"""Tests of the corner-aware evaluation stack.

The contract of the PVT-corner refactor, layer by layer:

* the **nominal corner is the identity** — ``measure``/``measure_many``
  at ``corner=None``/``"tt"`` are bit-identical to the pre-corner flow;
* skewed corners thread **one** supply/process/temperature knob through
  devices -> netlist -> DC/AC solvers, and the stacked-corner batched
  path stays bit-identical to per-(candidate, corner) sequential
  evaluation with per-pair failure isolation;
* objectives and the serving stack score the **worst corner**: a design
  passes only when every corner passes, responses carry per-corner
  metrics plus the binding corner, and corner sets never collide in the
  result cache.
"""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import DesignSpec
from repro.core.bundle import SizingModel
from repro.datagen import SequenceBuilder, SequenceConfig
from repro.datagen.serialize import ParsedParams
from repro.devices import (
    CORNER_PRESETS,
    NMOS_65NM,
    NOMINAL_CORNER,
    PMOS_65NM,
    TEMPERATURE_K,
    THERMAL_VOLTAGE,
    VDD,
    Corner,
    resolve_corner,
    resolve_corners,
    thermal_voltage,
)
from repro.service import SizingEngine, SizingRequest, SizingResponse
from repro.service.cache import ResultCache, quantize_spec
from repro.solvers import BatchedBackend, ScalarBackend, SearchObjective
from repro.spice import ConvergenceError, PerformanceMetrics, parse_netlist, to_spice
from repro.spice.dc import _structure_key
from repro.topologies import (
    CornerSweep,
    FiveTransistorOTA,
    MeasureOutcome,
    build_active_inductor,
)

from tests.conftest import (
    GOOD_WIDTHS,
    PoisonedFiveT,
    assert_sweeps_identical,
    make_population,
)

#: Width marking the candidate that converges at TT but not at SS below.
POISON_WIDTH = 4.444e-6

ALL_CORNERS = ("tt", "ss", "ff")


# ----------------------------------------------------------------------
# Corner resolution and the identity of the nominal corner
# ----------------------------------------------------------------------
class TestCornerResolution:
    def test_presets(self):
        assert set(CORNER_PRESETS) == {"tt", "ss", "ff"}
        assert resolve_corner("tt") is NOMINAL_CORNER
        assert resolve_corner(None) is NOMINAL_CORNER
        assert resolve_corner("SS") == CORNER_PRESETS["ss"]
        ss = resolve_corner("ss")
        assert ss.vt0_scale > 1.0 and ss.kp_scale < 1.0 and ss.vdd_scale < 1.0
        ff = resolve_corner("ff")
        assert ff.vt0_scale < 1.0 and ff.kp_scale > 1.0 and ff.vdd_scale > 1.0

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="known:"):
            resolve_corner("sf")

    def test_mapping_overrides(self):
        corner = resolve_corner({"process": "ss", "vdd_scale": 1.0})
        assert corner.name == "ss"
        assert corner.vt0_scale == CORNER_PRESETS["ss"].vt0_scale
        assert corner.vdd_scale == 1.0
        hot = resolve_corner({"name": "hot", "temperature_k": 398.15})
        assert hot.vt0_scale == 1.0 and hot.temperature_k == 398.15
        with pytest.raises(ValueError, match="unknown corner fields"):
            resolve_corner({"name": "x", "vdd": 1.0})

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            Corner("bad", vdd_scale=0.0)
        with pytest.raises(ValueError):
            Corner("bad", temperature_k=-1.0)
        with pytest.raises(ValueError):
            Corner("")
        # Names key JSON maps and the whitespace-separated netlist header.
        with pytest.raises(ValueError, match="whitespace"):
            Corner("hot corner")
        with pytest.raises(ValueError, match="whitespace"):
            resolve_corner({"name": "a=b"})

    def test_resolve_corners_uniqueness_and_empty(self):
        assert resolve_corners(None) == ()
        assert resolve_corners(()) == ()
        resolved = resolve_corners(ALL_CORNERS)
        assert [c.name for c in resolved] == list(ALL_CORNERS)
        with pytest.raises(ValueError, match="unique"):
            resolve_corners(("ss", {"process": "ss"}))

    def test_nominal_is_identity(self):
        assert NOMINAL_CORNER.is_nominal
        assert NOMINAL_CORNER.apply_tech(NMOS_65NM) is NMOS_65NM
        assert NOMINAL_CORNER.supply(VDD) == VDD
        # A process-only corner keeps the pinned nominal thermal voltage.
        assert thermal_voltage(TEMPERATURE_K) == THERMAL_VOLTAGE

    def test_skewed_tech_cached_and_scaled(self):
        ss = resolve_corner("ss")
        skewed = ss.apply_tech(NMOS_65NM)
        assert skewed is ss.apply_tech(NMOS_65NM)  # cached identity
        assert skewed.vt0 == NMOS_65NM.vt0 * ss.vt0_scale
        assert skewed.kp == NMOS_65NM.kp * ss.kp_scale
        assert skewed.ut == thermal_voltage(ss.temperature_k)
        assert skewed.ut > THERMAL_VOLTAGE  # SS runs hot

    def test_json_round_trip(self):
        assert resolve_corner(CORNER_PRESETS["ss"].to_json()) == CORNER_PRESETS["ss"]
        custom = Corner("cold", temperature_k=233.15)
        assert resolve_corner(custom.to_json()) == custom


# ----------------------------------------------------------------------
# Topology layer: build_circuit / measure at corners
# ----------------------------------------------------------------------
class TestCornerMeasurement:
    def test_nominal_corner_bit_identical(self, five_t, five_t_measurement):
        at_tt = five_t.measure(GOOD_WIDTHS["5T-OTA"], corner="tt")
        assert np.array_equal(
            five_t_measurement.metrics.as_array(), at_tt.metrics.as_array()
        )
        assert five_t_measurement.dc.node_voltages == at_tt.dc.node_voltages
        assert five_t_measurement.dc.iterations == at_tt.dc.iterations
        assert five_t_measurement.dc.strategy == at_tt.dc.strategy
        assert five_t_measurement.device_params == at_tt.device_params

    def test_supply_and_tech_skewed(self, five_t):
        circuit = five_t.build_circuit(GOOD_WIDTHS["5T-OTA"], corner="ss")
        ss = resolve_corner("ss")
        assert circuit.corner == ss
        assert circuit.vsource("VDD").dc == pytest.approx(VDD * ss.vdd_scale)
        for device in circuit.mosfets:
            assert device.tech.ut == thermal_voltage(ss.temperature_k)
        # Nominal build stays unannotated (identity path).
        assert five_t.build_circuit(GOOD_WIDTHS["5T-OTA"]).corner is None
        assert five_t.supply_voltage("ff") == pytest.approx(VDD * 1.10)
        assert five_t.supply_voltage() == VDD

    def test_corner_moves_metrics_the_right_way(self, five_t, five_t_measurement):
        nominal = five_t_measurement.metrics
        ss = five_t.measure(GOOD_WIDTHS["5T-OTA"], corner="ss").metrics
        ff = five_t.measure(GOOD_WIDTHS["5T-OTA"], corner="ff").metrics
        # Slow/hot/low-supply loses speed; fast/cold/high-supply gains it.
        assert ss.ugf_hz < nominal.ugf_hz < ff.ugf_hz
        assert ss.f3db_hz < nominal.f3db_hz < ff.f3db_hz

    def test_corner_circuits_share_one_dc_structure(self, five_t):
        keys = {
            _structure_key(five_t.build_circuit(GOOD_WIDTHS["5T-OTA"], corner=name))
            for name in ALL_CORNERS
        }
        assert len(keys) == 1  # population x corner stacks into one batch

    def test_initial_guess_tracks_supply(self, five_t):
        assert five_t.initial_guess_for()["vdd"] == five_t.initial_guess()["vdd"]
        assert five_t.initial_guess_for("ss")["vdd"] == pytest.approx(VDD * 0.90)

    def test_export_header_round_trip(self, five_t):
        circuit = five_t.build_circuit(GOOD_WIDTHS["5T-OTA"], corner="ss")
        deck = to_spice(circuit)
        assert "* corner: ss" in deck
        parsed = parse_netlist(deck)
        assert parsed.corner == resolve_corner("ss")
        # The parsed deck simulates at the annotated corner: device tech
        # carries the skew again (the M cards name the nominal model) and
        # the supply card its scaled value.
        for original, restored in zip(circuit.mosfets, parsed.mosfets, strict=True):
            assert restored.tech == original.tech
        assert parsed.vsource("VDD").dc == circuit.vsource("VDD").dc
        nominal_deck = to_spice(five_t.build_circuit(GOOD_WIDTHS["5T-OTA"]))
        assert "corner:" not in nominal_deck
        assert parse_netlist(nominal_deck).corner is None

    def test_corner_header_applies_wherever_it_appears(self, five_t):
        """A trailing corner header (comments-at-end decks) still skews the
        parsed devices -- the header is located in a pre-pass."""
        circuit = five_t.build_circuit(GOOD_WIDTHS["5T-OTA"], corner="ss")
        deck = to_spice(circuit)
        lines = deck.splitlines()
        header = next(line for line in lines if line.startswith("* corner:"))
        lines.remove(header)
        lines.insert(len(lines) - 1, header)  # just before .end
        parsed = parse_netlist("\n".join(lines) + "\n")
        assert parsed.corner == resolve_corner("ss")
        for original, restored in zip(circuit.mosfets, parsed.mosfets, strict=True):
            assert restored.tech == original.tech

    def test_ordinary_corner_comments_stay_comments(self):
        """Hand-written comments that merely start '* corner:' must neither
        crash the parser nor mis-annotate the circuit."""
        deck = (
            "* my deck\n"
            "* corner: T=85C\n"
            "* corner: measured at the lab bench\n"
            "R1 a 0 1e3\n"
            ".end\n"
        )
        circuit = parse_netlist(deck)
        assert circuit.corner is None
        assert len(circuit.resistors) == 1

    def test_worst_corner_on_success_is_least_margin(self, five_t):
        """When every corner passes, the binding corner is the one with the
        smallest headroom, not whichever happens to be listed first."""
        sweep = five_t.measure_many(
            [GOOD_WIDTHS["5T-OTA"]], corners=("ff", "tt", "ss")
        )[0]
        ss_metrics = sweep.outcome("ss").result.metrics
        easy = DesignSpec(
            gain_db=ss_metrics.gain_db * 0.97,
            f3db_hz=ss_metrics.f3db_hz * 0.9,
            ugf_hz=ss_metrics.ugf_hz * 0.9,
        )
        name, metrics = sweep.worst_corner(easy)
        assert name == "ss"  # least margin, despite "ff" being listed first
        assert np.array_equal(metrics.as_array(), ss_metrics.as_array())

    def test_measure_many_rejects_conflicting_corner_args(self, five_t):
        with pytest.raises(ValueError, match="not both"):
            five_t.measure_many(
                [GOOD_WIDTHS["5T-OTA"]], corner="ss", corners=("tt",)
            )
        with pytest.raises(ValueError, match="non-empty"):
            five_t.measure_many([GOOD_WIDTHS["5T-OTA"]], corners=())

    def test_measure_many_single_corner_flat(self, five_t):
        outcomes = five_t.measure_many([GOOD_WIDTHS["5T-OTA"]], corner="ss")
        reference = five_t.measure(GOOD_WIDTHS["5T-OTA"], corner="ss")
        assert isinstance(outcomes[0], MeasureOutcome)
        assert np.array_equal(
            outcomes[0].result.metrics.as_array(), reference.metrics.as_array()
        )


# ----------------------------------------------------------------------
# Supply unification (active inductor shares the topology knob)
# ----------------------------------------------------------------------
class TestSupplyUnification:
    def test_single_supply_knob(self, five_t):
        assert five_t.vdd == VDD  # the topology reads the technology knob
        circuit = build_active_inductor()
        assert circuit.vsource("VDD").dc == VDD  # ...and so does Fig. 2

    def test_corner_scales_active_inductor(self):
        circuit = build_active_inductor(corner="ss")
        ss = resolve_corner("ss")
        assert circuit.vsource("VDD").dc == pytest.approx(VDD * ss.vdd_scale)
        assert circuit.mosfet("M").tech == ss.apply_tech(NMOS_65NM)
        assert circuit.corner == ss
        # Explicit vdd still wins (back-compat escape hatch).
        assert build_active_inductor(vdd=1.0).vsource("VDD").dc == 1.0


# ----------------------------------------------------------------------
# Backend parity on the corner axis (incl. per-pair isolation)
# ----------------------------------------------------------------------
class TestCornerBackendParity:
    def test_batched_bit_identical_to_scalar(self, five_t):
        population = make_population(five_t, 4)
        scalar = ScalarBackend().measure_many(five_t, population, corners=ALL_CORNERS)
        batched = BatchedBackend().measure_many(five_t, population, corners=ALL_CORNERS)
        assert all(isinstance(sweep, CornerSweep) for sweep in batched)
        for reference, sweep in zip(scalar, batched, strict=True):
            assert_sweeps_identical(reference, sweep)

    def test_tt_converges_ss_raises_isolated_per_pair(self):
        """The ISSUE's contract: a candidate that converges at TT but hits
        ConvergenceError at SS fails *only* its (candidate, SS) slot."""
        topology = PoisonedFiveT(POISON_WIDTH, corner_name="ss")
        population = make_population(topology, 3, seed=5)
        poisoned = dict(population[1])
        poisoned["M1"] = POISON_WIDTH
        batch = [population[0], poisoned, population[2]]

        # The sequential path: fine at TT, ConvergenceError at SS.
        topology.measure(poisoned, corner="tt")
        with pytest.raises(ConvergenceError):
            topology.measure(poisoned, corner="ss")

        scalar = ScalarBackend().measure_many(topology, batch, corners=ALL_CORNERS)
        batched = BatchedBackend().measure_many(topology, batch, corners=ALL_CORNERS)
        for sweeps in (scalar, batched):
            sweep = sweeps[1]
            assert not sweep.ok and sweep.n_ok == 2
            assert sweep.outcome("tt").ok and sweep.outcome("ff").ok
            assert not sweep.outcome("ss").ok
            assert sweep.outcome("ss").error is not None
            # Neighbours are untouched, at every corner.
            assert sweeps[0].ok and sweeps[2].ok
        for reference, sweep in zip(scalar, batched, strict=True):
            assert_sweeps_identical(reference, sweep)

    def test_unbuildable_candidate_fails_every_corner(self, five_t):
        bad = dict(GOOD_WIDTHS["5T-OTA"])
        bad.pop("M5")
        sweeps = BatchedBackend().measure_many(five_t, [bad], corners=ALL_CORNERS)
        assert not sweeps[0].ok and sweeps[0].n_ok == 0
        assert all("M5" in outcome.error for outcome in sweeps[0].outcomes)

    def test_backends_agree_on_empty_corner_axis(self, five_t):
        """Both backends reject corners=() identically (a vacuous sweep
        would read as all-corners-pass for an unmeasured design)."""
        for backend in (ScalarBackend(), BatchedBackend()):
            with pytest.raises(ValueError, match="non-empty"):
                backend.measure_many(five_t, [GOOD_WIDTHS["5T-OTA"]], corners=())

    def test_backend_measure_single_corner(self, five_t):
        outcome = BatchedBackend().measure(five_t, GOOD_WIDTHS["5T-OTA"], corner="ff")
        reference = five_t.measure(GOOD_WIDTHS["5T-OTA"], corner="ff")
        assert np.array_equal(
            outcome.result.metrics.as_array(), reference.metrics.as_array()
        )


# ----------------------------------------------------------------------
# SearchObjective: worst-corner aggregation
# ----------------------------------------------------------------------
class _SweepStub:
    """Duck-typed MeasurementResult carrying only metrics."""

    def __init__(self, metrics):
        self.metrics = metrics


class _ScriptedCornerBackend(BatchedBackend):
    """Backend returning scripted per-corner metrics (None = failure)."""

    def __init__(self, script):
        self.script = list(script)  # one dict corner-name -> metrics per call

    def measure_many(self, topology, widths_list, corners=None):
        assert corners is not None
        resolved = resolve_corners(corners)
        sweeps = []
        for widths in widths_list:
            per_corner = self.script.pop(0)
            outcomes = []
            for corner in resolved:
                metrics = per_corner[corner.name]
                if metrics is None:
                    outcomes.append(
                        MeasureOutcome(widths=dict(widths), error="scripted failure")
                    )
                else:
                    outcomes.append(
                        MeasureOutcome(widths=dict(widths), result=_SweepStub(metrics))
                    )
            sweeps.append(
                CornerSweep(widths=dict(widths), corners=resolved, outcomes=tuple(outcomes))
            )
        return sweeps


class TestWorstCornerObjective:
    SPEC = DesignSpec(gain_db=25.0, f3db_hz=5e6, ugf_hz=8e7)
    PASS = PerformanceMetrics(26.0, 6e6, 9e7)

    def _objective(self, topology, script):
        return SearchObjective(
            topology, self.SPEC, backend=_ScriptedCornerBackend(script),
            corners=("tt", "ss"),
        )

    def test_pass_requires_all_corners(self, five_t):
        miss_ss = PerformanceMetrics(20.0, 6e6, 9e7)  # 20% gain shortfall at ss
        objective = self._objective(
            five_t, [{"tt": self.PASS, "ss": miss_ss}, {"tt": self.PASS, "ss": self.PASS}]
        )
        space = objective.space
        values = objective.evaluate_many([np.full(space.dimension, 0.5)] * 2)
        assert values[0] == pytest.approx(0.2)  # scored by the worst corner
        assert values[1] == 0.0
        assert objective.satisfied
        assert objective.best_worst_corner == "tt"  # ties -> first corner
        assert set(objective.best_corner_metrics) == {"tt", "ss"}

    def test_failed_corner_scores_penalty(self, five_t):
        from repro.solvers import PENALTY

        objective = self._objective(five_t, [{"tt": self.PASS, "ss": None}])
        value = objective.evaluate_many([np.full(objective.space.dimension, 0.5)])[0]
        assert value == PENALTY
        assert objective.best_widths is None  # a failed corner disqualifies
        assert not objective.satisfied

    def test_spice_call_and_history_accounting(self, five_t):
        objective = self._objective(
            five_t,
            [{"tt": self.PASS, "ss": None}, {"tt": self.PASS, "ss": self.PASS}],
        )
        objective.evaluate_many([np.full(objective.space.dimension, 0.5)] * 2)
        # Every corner evaluation is one SPICE call; history has one entry
        # per call and stays monotone.
        assert objective.spice_calls == 4
        assert len(objective.history) == 4
        assert objective.history == sorted(objective.history, reverse=True)

    def test_real_worst_corner_no_easier_than_nominal(self, five_t, rng):
        measurement = five_t.measure(GOOD_WIDTHS["5T-OTA"])
        spec = DesignSpec(
            measurement.metrics.gain_db * 0.95,
            measurement.metrics.f3db_hz * 0.5,
            measurement.metrics.ugf_hz * 0.5,
        )
        nominal = SearchObjective(five_t, spec)
        corner = SearchObjective(five_t, spec, corners=ALL_CORNERS)
        points = [corner.space.random_point(rng) for _ in range(3)]
        values_nominal = nominal.evaluate_many(points)
        values_corner = corner.evaluate_many(points)
        assert np.all(values_corner >= values_nominal - 1e-12)


# ----------------------------------------------------------------------
# Engine serving: worst-case Stage IV and the response schema
# ----------------------------------------------------------------------
class _FixedDesignModel(SizingModel):
    """Oracle returning one measured design's parameters for any spec."""

    def __init__(self, topology, params, luts):
        builder = SequenceBuilder(topology, SequenceConfig())
        super().__init__(
            transformer=None, bpe=None, vocab=None,
            sequence_config=builder.config,
            builders={topology.name: builder},
            luts=luts,
        )
        self._params = params

    def predict_params(self, topology_name, spec, max_len=None):
        values = {group: dict(params) for group, params in self._params.items()}
        return ParsedParams(values=values, complete=True), f"<fixed:{spec.gain_db:.4f}>"

    def predict_params_many(self, specs_by_topology, max_len=None):
        return {
            name: [self.predict_params(name, spec) for spec in specs]
            for name, specs in specs_by_topology.items()
        }


@pytest.fixture(scope="module")
def corner_serving(nmos_lut, pmos_lut):
    """An engine over the fixed-design oracle plus that design's per-corner
    metrics (measured at the widths Stage III actually recovers)."""
    topology = FiveTransistorOTA()
    measurement = topology.measure(GOOD_WIDTHS["5T-OTA"])
    params = {
        group.name: dict(measurement.device_params[group.name])
        for group in topology.groups
    }
    model = _FixedDesignModel(
        topology, params, {NMOS_65NM.name: nmos_lut, PMOS_65NM.name: pmos_lut}
    )
    engine = SizingEngine(model, cache_size=0)
    engine.adopt_topology(topology)
    widths = engine.widths_from_params(topology, params)
    metrics = {
        name: topology.measure(widths, corner=name).metrics for name in ALL_CORNERS
    }
    return engine, topology, metrics


class TestCornerServing:
    def _easy_spec(self, metrics):
        """Satisfiable at every corner: below the per-metric minimum."""
        return DesignSpec(
            gain_db=min(m.gain_db for m in metrics.values()) * 0.97,
            f3db_hz=min(m.f3db_hz for m in metrics.values()) * 0.9,
            ugf_hz=min(m.ugf_hz for m in metrics.values()) * 0.9,
        )

    def _tt_only_spec(self, metrics):
        """Passes at nominal but not at SS (between the two corners)."""
        return DesignSpec(
            gain_db=metrics["tt"].gain_db * 0.99,
            f3db_hz=metrics["tt"].f3db_hz * 0.95,
            ugf_hz=metrics["tt"].ugf_hz * 0.95,
        )

    def test_success_needs_every_corner(self, corner_serving):
        engine, topology, metrics = corner_serving
        spec = self._tt_only_spec(metrics)
        nominal = engine.size(
            SizingRequest(topology=topology.name, spec=spec, max_iterations=1)
        )
        assert nominal.success  # the same design passes at nominal...
        assert nominal.corner_metrics is None and nominal.worst_corner is None
        hardened = engine.size(
            SizingRequest(
                topology=topology.name, spec=spec, max_iterations=1,
                corners=ALL_CORNERS,
            )
        )
        assert not hardened.success  # ...but not worst-case across corners
        assert hardened.worst_corner == "ss"
        assert set(hardened.corner_metrics) == set(ALL_CORNERS)
        assert hardened.spice_simulations == len(ALL_CORNERS)

    def test_all_corner_success_reports_binding_corner(self, corner_serving):
        engine, topology, metrics = corner_serving
        response = engine.size(
            SizingRequest(
                topology=topology.name, spec=self._easy_spec(metrics),
                max_iterations=1, corners=ALL_CORNERS,
            )
        )
        assert response.success
        # The binding corner of a passing design is the least-margin one.
        assert response.worst_corner == "ss"
        assert set(response.corner_metrics) == set(ALL_CORNERS)
        # The headline metrics are the binding worst corner's measurement.
        worst = response.corner_metrics[response.worst_corner]
        assert np.array_equal(response.metrics.as_array(), worst.as_array())
        for name, measured in metrics.items():
            assert response.corner_metrics[name].gain_db == pytest.approx(
                measured.gain_db
            )

    def test_corner_responses_round_trip_json(self, corner_serving):
        engine, topology, metrics = corner_serving
        response = engine.size(
            SizingRequest(
                topology=topology.name, spec=self._easy_spec(metrics),
                max_iterations=1, corners=("tt", "ss"),
            )
        )
        restored = SizingResponse.from_json_line(response.to_json_line())
        assert restored == response

    def test_mixed_corner_batch_isolated(self, corner_serving):
        """One batch mixing nominal, corner-pass and corner-fail requests:
        each request is judged against its own corner axis."""
        engine, topology, metrics = corner_serving
        easy, tt_only = self._easy_spec(metrics), self._tt_only_spec(metrics)
        responses = engine.size_batch(
            [
                SizingRequest(topology=topology.name, spec=tt_only, id="nom",
                              max_iterations=1),
                SizingRequest(topology=topology.name, spec=easy, id="all",
                              max_iterations=1, corners=ALL_CORNERS),
                SizingRequest(topology=topology.name, spec=tt_only, id="hard",
                              max_iterations=1, corners=ALL_CORNERS),
            ]
        )
        by_id = {response.request_id: response for response in responses}
        assert by_id["nom"].success and by_id["nom"].corner_metrics is None
        assert by_id["all"].success
        assert not by_id["hard"].success and by_id["hard"].worst_corner == "ss"


# ----------------------------------------------------------------------
# Request schema and cache behavior
# ----------------------------------------------------------------------
class TestCornerRequests:
    def _request(self, gain=25.0, **kwargs):
        return SizingRequest.for_spec("5T-OTA", gain, 5e6, 8e7, **kwargs)

    def test_corners_normalized_and_round_tripped(self):
        request = self._request(corners=("ss", {"name": "hot", "temperature_k": 398.15}))
        assert all(isinstance(corner, Corner) for corner in request.corners)
        restored = SizingRequest.from_json_line(request.to_json_line())
        assert restored == request
        # Absent / empty corners parse to the nominal flow.
        payload = self._request().to_json()
        assert payload["corners"] == []
        del payload["corners"]
        assert SizingRequest.from_json(payload).corners == ()

    def test_duplicate_corner_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            self._request(corners=("ss", "ss"))

    def test_corner_sets_never_collide_in_cache(self):
        nominal = self._request(id="a")
        ss = self._request(id="b", corners=("ss",))
        both = self._request(id="c", corners=("ss", "ff"))
        keys = {ResultCache.key(r) for r in (nominal, ss, both)}
        assert len(keys) == 3

        cache = ResultCache()
        response = SizingResponse(
            request_id="a", topology="5T-OTA", success=True,
            widths={"M1": 1e-6}, metrics=PerformanceMetrics(26.0, 6e6, 9e7),
            iterations=1, spice_simulations=1, wall_time_s=0.1,
        )
        cache.put(nominal, response)
        assert cache.get(self._request(id="a2")) is not None
        assert cache.get(self._request(id="b2", corners=("ss",))) is None
        assert cache.get(self._request(id="c2", corners=("ss", "ff"))) is None

    def test_near_duplicate_transfer_checks_every_corner(self):
        """The worst corner by *total* shortfall does not dominate per
        metric, so near-duplicate transfer must re-validate all corners."""
        cache = ResultCache()
        cached_request = self._request(id="x", corners=("tt", "ss"))
        response = SizingResponse(
            request_id="x", topology="5T-OTA", success=True,
            widths={"M1": 1e-6},
            # worst corner by sum is "ss" (big ugf miss), but "tt" has the
            # lower gain -- checking only response.metrics would miss it.
            metrics=PerformanceMetrics(26.0, 6e6, 8.5e7),
            corner_metrics={
                "tt": PerformanceMetrics(25.02, 7e6, 9.5e7),
                "ss": PerformanceMetrics(26.0, 6e6, 8.5e7),
            },
            worst_corner="ss",
            iterations=1, spice_simulations=2, wall_time_s=0.1,
        )
        cache.put(cached_request, response)
        # 25.04 quantizes to 25.0 but tt's measured 25.02 dB falls short.
        near = self._request(id="y", gain=25.04, corners=("tt", "ss"))
        assert cache.get(near) is None
        ok = self._request(id="z", gain=25.004, corners=("tt", "ss"))
        assert cache.get(ok) is not None

    def test_near_duplicate_transfer_reranks_binding_corner(self):
        """The binding corner is spec-dependent: a near-duplicate hit must
        re-rank worst_corner/headline metrics against the *new* spec, not
        replay the cached request's stale ranking."""
        cache = ResultCache()
        cached_request = self._request(id="x", corners=("tt", "ss"))
        tt_metrics = PerformanceMetrics(25.01, 9e6, 9.5e7)
        ss_metrics = PerformanceMetrics(26.0, 5.5e6, 9e7)
        response = SizingResponse(
            request_id="x", topology="5T-OTA", success=True,
            widths={"M1": 1e-6},
            metrics=tt_metrics,
            # Deliberately stale ranking relative to the near request.
            corner_metrics={"tt": tt_metrics, "ss": ss_metrics},
            worst_corner="tt",
            iterations=1, spice_simulations=2, wall_time_s=0.1,
        )
        cache.put(cached_request, response)
        # Exact spec: deterministic replay, ranking untouched.
        exact = cache.get(self._request(id="x2", corners=("tt", "ss")))
        assert exact.worst_corner == "tt"
        # Near-duplicate: under its own targets "ss" has the least margin
        # (f3db 5.5e6 vs target 5e6) -- the hit must say so.
        near = cache.get(self._request(id="y", gain=25.004, corners=("tt", "ss")))
        assert near is not None
        assert near.worst_corner == "ss"
        assert np.array_equal(near.metrics.as_array(), ss_metrics.as_array())


# ----------------------------------------------------------------------
# quantize_spec property tests (hypothesis)
# ----------------------------------------------------------------------
class TestQuantizeSpecProperties:
    POSITIVE = st.floats(
        min_value=1e-12, max_value=1e15, allow_nan=False, allow_infinity=False
    )

    @given(POSITIVE)
    def test_idempotent(self, value):
        once = quantize_spec(value)
        assert quantize_spec(once) == once

    @given(POSITIVE, POSITIVE)
    def test_order_preserving(self, a, b):
        low, high = sorted((a, b))
        assert quantize_spec(low) <= quantize_spec(high)

    @given(POSITIVE)
    def test_three_significant_digits(self, value):
        quantized = quantize_spec(value)
        assert quantized == float(f"{value:.3g}")
        if value > 0:
            assert math.isclose(quantized, value, rel_tol=5.1e-3)
