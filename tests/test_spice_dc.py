"""Tests of the nonlinear DC operating-point solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import NMOS_65NM, PMOS_65NM
from repro.spice import Circuit, solve_dc, solve_dc_many

L = 180e-9


def resistor_divider(r1=1e3, r2=3e3, vin=1.2):
    circuit = Circuit("divider")
    circuit.add_vsource("VIN", "in", "0", vin)
    circuit.add_resistor("R1", "in", "mid", r1)
    circuit.add_resistor("R2", "mid", "0", r2)
    return circuit


class TestLinearCircuits:
    def test_resistor_divider_voltage(self):
        solution = solve_dc(resistor_divider())
        assert solution.voltage("mid") == pytest.approx(1.2 * 3.0 / 4.0, rel=1e-9)

    def test_source_current(self):
        solution = solve_dc(resistor_divider())
        # SPICE convention: the branch current of a sourcing supply is
        # negative (it flows out of the + terminal into the circuit).
        assert solution.source_currents["VIN"] == pytest.approx(-0.3e-3, rel=1e-4)

    def test_current_source_into_resistor(self):
        circuit = Circuit("ir")
        circuit.add_resistor("R", "n", "0", 10e3)
        circuit.add_isource("I1", "0", "n", 1e-3)  # pulls 1 mA out of ground into n
        solution = solve_dc(circuit)
        assert solution.voltage("n") == pytest.approx(10.0, rel=1e-6)

    def test_ground_alias(self):
        circuit = Circuit("alias")
        circuit.add_vsource("V1", "a", "gnd", 1.0)
        circuit.add_resistor("R", "a", "GND", 1e3)
        solution = solve_dc(circuit)
        assert solution.voltage("a") == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        r1=st.floats(min_value=10.0, max_value=1e6),
        r2=st.floats(min_value=10.0, max_value=1e6),
        vin=st.floats(min_value=-5.0, max_value=5.0),
    )
    def test_divider_property(self, r1, r2, vin):
        if abs(vin) < 1e-6:
            return
        solution = solve_dc(resistor_divider(r1, r2, vin))
        expected = vin * r2 / (r1 + r2)
        assert solution.voltage("mid") == pytest.approx(expected, rel=1e-6)

    def test_kcl_residual_small(self):
        solution = solve_dc(resistor_divider())
        assert solution.kcl_residual() < 1e-9


class TestNonlinearCircuits:
    def test_diode_connected_nmos(self):
        circuit = Circuit("diode")
        circuit.add_vsource("VDD", "vdd", "0", 1.2)
        circuit.add_resistor("R", "vdd", "d", 20e3)
        circuit.add_mosfet("M", "d", "d", "0", NMOS_65NM, 5e-6, L)
        solution = solve_dc(circuit)
        vd = solution.voltage("d")
        assert 0.3 < vd < 0.8  # around a Vgs drop
        # KCL: resistor current equals device current.
        device = circuit.mosfet("M")
        i_res = (1.2 - vd) / 20e3
        assert device.ids(vd, vd, 0.0) == pytest.approx(i_res, rel=1e-6)

    def test_common_source_operating_point(self):
        circuit = Circuit("cs")
        circuit.add_vsource("VDD", "vdd", "0", 1.2)
        circuit.add_vsource("VG", "g", "0", 0.55)
        circuit.add_resistor("RL", "vdd", "d", 20e3)
        circuit.add_mosfet("M", "d", "g", "0", NMOS_65NM, 5e-6, L)
        solution = solve_dc(circuit)
        assert 0.0 < solution.voltage("d") < 1.2
        op = solution.op("M")
        assert op.small_signal.gm > 0

    def test_initial_guess_independence(self, five_t):
        widths = {"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6}
        circuit = five_t.build(widths)
        sol_a = solve_dc(circuit, initial_guess=five_t.initial_guess())
        sol_b = solve_dc(circuit, initial_guess={n: 0.9 for n in circuit.nodes()})
        for node in circuit.nodes():
            assert sol_a.voltage(node) == pytest.approx(sol_b.voltage(node), abs=1e-6)

    def test_operating_points_recorded_for_all_devices(self, five_t_measurement):
        ops = five_t_measurement.dc.operating_points
        assert set(ops) == {"M1", "M2", "M3", "M4", "M5"}

    def test_symmetric_ota_has_symmetric_op(self, five_t_measurement):
        dc = five_t_measurement.dc
        # Perfect matching + equal inputs -> mirror symmetry of the OP.
        assert dc.voltage("d1") == pytest.approx(dc.voltage("out"), abs=1e-6)

    def test_pmos_source_follower(self):
        circuit = Circuit("psf")
        circuit.add_vsource("VDD", "vdd", "0", 1.2)
        circuit.add_vsource("VG", "g", "0", 0.4)
        circuit.add_mosfet("M", "0", "g", "s", PMOS_65NM, 10e-6, L)
        circuit.add_resistor("RS", "vdd", "s", 50e3)
        solution = solve_dc(circuit)
        # Source should sit roughly a |Vgs| above the gate.
        assert solution.voltage("s") > 0.4


class TestRobustness:
    def test_floating_node_is_conditioned_by_gmin(self):
        circuit = Circuit("float")
        circuit.add_vsource("V1", "a", "0", 1.0)
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_capacitor("C1", "b", "c", 1e-12)  # c floats in DC
        circuit.add_resistor("R2", "c", "0", 1e3)
        solution = solve_dc(circuit)
        assert solution.voltage("c") == pytest.approx(0.0, abs=1e-6)

    def test_solution_strategy_reported(self):
        solution = solve_dc(resistor_divider())
        assert solution.strategy in ("newton", "gmin-stepping", "source-stepping")


class TestSolveDCMany:
    def _cs_stage(self, width):
        circuit = Circuit("cs")
        circuit.add_vsource("VDD", "vdd", "0", 1.2)
        circuit.add_vsource("VIN", "g", "0", 0.55)
        circuit.add_resistor("RL", "vdd", "d", 20e3)
        circuit.add_mosfet("M", "d", "g", "0", NMOS_65NM, width, L)
        return circuit

    def test_bitwise_matches_scalar_over_width_batch(self):
        widths = [1e-6, 2e-6, 5e-6, 12e-6, 30e-6]
        batched = solve_dc_many([self._cs_stage(w) for w in widths])
        for width, solution in zip(widths, batched, strict=True):
            reference = solve_dc(self._cs_stage(width))
            assert solution.node_voltages == reference.node_voltages
            assert solution.source_currents == reference.source_currents
            assert solution.iterations == reference.iterations
            assert solution.strategy == reference.strategy

    def test_mosfet_free_batch(self):
        """A structure group with no MOSFETs (nothing to vectorize) still
        solves every candidate."""
        solutions = solve_dc_many([resistor_divider(), resistor_divider()])
        assert len(solutions) == 2
        for solution in solutions:
            assert solution.voltage("mid") == pytest.approx(1.2 * 3.0 / 4.0, rel=1e-9)

    def test_mixed_structures_are_grouped(self):
        """Structurally different circuits in one call still all solve."""
        mixed = [self._cs_stage(2e-6), resistor_divider(), self._cs_stage(5e-6)]
        solutions = solve_dc_many(mixed)
        assert solutions[1].voltage("mid") == pytest.approx(1.2 * 3.0 / 4.0, rel=1e-9)
        assert solutions[0].node_voltages == solve_dc(self._cs_stage(2e-6)).node_voltages
        assert solutions[2].node_voltages == solve_dc(self._cs_stage(5e-6)).node_voltages
