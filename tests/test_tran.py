"""Tests of the transient (step-response) engine and its end-to-end threading.

Layer by layer, the contract of the transient extension:

* the integrator is *correct* (analytic RC reference, trap/BE agreement,
  monotone error-vs-timestep convergence -- hypothesis property tests);
* the batched ``run_tran_many`` is **bit-identical** to the sequential
  ``run_tran`` loop, with per-candidate failure isolation;
* golden traces pin every topology's known-good step response, so future
  solver/stamp refactors diff against known-good waveforms;
* specs/requests/cache/engine/CLI carry the transient targets, while the
  default AC-only path stays bit-identical to the pre-transient flow.
"""

import json
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DesignSpec, tighten_spec
from repro.service import ResultCache, SizingEngine, SizingRequest, SizingResponse
from repro.solvers import BatchedBackend, ScalarBackend, SearchObjective
from repro.spice import (
    Circuit,
    ConvergenceError,
    PerformanceMetrics,
    extract_tran_metrics,
    run_tran,
    run_tran_many,
    solve_dc,
    step_sources,
)
from repro.topologies import (
    DEFAULT_ANALYSES,
    TRAN_ANALYSES,
    available_topologies,
    resolve_analyses,
    topology_by_name,
)

from tests.conftest import (
    GOOD_WIDTHS,
    PoisonedFiveT,
    assert_measurements_identical,
    assert_sweeps_identical,
    make_population,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "tran_traces.json"

TRAN = ("dc", "ac", "tran")


def _rc_circuit(resistance: float, capacitance: float) -> Circuit:
    """V source -> R -> C to ground: the analytic step-response testbench."""
    circuit = Circuit(name="rc")
    circuit.add_vsource("VIN", "in", "0", 1.0, ac=1.0)
    circuit.add_resistor("R1", "in", "out", resistance)
    circuit.add_capacitor("C1", "out", "0", capacitance)
    return circuit


def _rc_response(resistance, capacitance, n_steps, method, amplitude=0.1):
    dc = solve_dc(_rc_circuit(resistance, capacitance))
    tau = resistance * capacitance
    result = run_tran(
        dc, t_stop=5 * tau, n_steps=n_steps, method=method, step_amplitude=amplitude
    )
    analytic = 1.0 + amplitude * (1.0 - np.exp(-result.times / tau))
    return result, analytic


# ----------------------------------------------------------------------
# The integrator against the analytic RC reference
# ----------------------------------------------------------------------
class TestIntegratorAccuracy:
    def test_rc_both_methods_track_the_exponential(self):
        for method in ("be", "trap"):
            result, analytic = _rc_response(1e3, 1e-9, 200, method)
            error = np.max(np.abs(result.voltage("out") - analytic))
            assert error < 0.002  # 2% of the 0.1 V step

    def test_trap_is_second_order_be_first_order(self):
        """Halving dt must cut the BE error ~2x and the trap error ~4x."""
        errors = {}
        for method in ("be", "trap"):
            errors[method] = []
            for n_steps in (100, 200, 400):
                result, analytic = _rc_response(1e3, 1e-9, n_steps, method)
                errors[method].append(np.max(np.abs(result.voltage("out") - analytic)))
        be_ratio = errors["be"][0] / errors["be"][2]
        trap_ratio = errors["trap"][0] / errors["trap"][2]
        assert 2.5 < be_ratio < 6.0  # ~4x over two halvings (first order)
        assert 10.0 < trap_ratio < 22.0  # ~16x over two halvings (second order)
        assert errors["trap"][1] < errors["be"][1]

    def test_final_value_matches_small_signal_gain(self, five_t, five_t_measurement):
        """For a small step, the settled output delta is the DC gain times
        the input step -- ties the transient engine to the AC analysis."""
        result = five_t.measure(GOOD_WIDTHS["5T-OTA"], analyses=TRAN)
        out = result.tran.voltage(five_t.output_node)
        delta = out[-1] - out[0]
        expected = five_t_measurement.metrics.gain_linear * five_t.tran_step_v
        assert delta == pytest.approx(expected, rel=0.02)

    def test_bad_arguments_rejected(self, five_t_measurement):
        dc = five_t_measurement.dc
        with pytest.raises(ValueError, match="unknown integration method"):
            run_tran(dc, t_stop=1e-7, method="rk4")
        with pytest.raises(ValueError, match="t_stop"):
            run_tran(dc, t_stop=0.0)
        with pytest.raises(ValueError, match="n_steps"):
            run_tran(dc, t_stop=1e-7, n_steps=0)
        with pytest.raises(ValueError, match="not a node"):
            run_tran(dc, t_stop=1e-7, n_steps=2).voltage("nope")

    def test_step_sources_scales_by_ac_and_preserves_original(self, five_t):
        circuit = five_t.build(GOOD_WIDTHS["5T-OTA"])
        stepped = step_sources(circuit, 2e-3)
        assert stepped.vsource("VINP").dc == circuit.vsource("VINP").dc + 1e-3
        assert stepped.vsource("VINN").dc == circuit.vsource("VINN").dc - 1e-3
        assert stepped.vsource("VDD").dc == circuit.vsource("VDD").dc  # ac = 0
        # The original netlist is untouched.
        assert circuit.vsource("VINP").dc == five_t.vcm


# ----------------------------------------------------------------------
# Hypothesis property tests
# ----------------------------------------------------------------------
class TestIntegratorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        resistance=st.floats(min_value=1e2, max_value=1e5),
        capacitance=st.floats(min_value=1e-12, max_value=1e-9),
    )
    def test_trap_and_be_agree_on_linear_rc(self, resistance, capacitance):
        """Both methods integrate the same circuit: on a linear RC whose
        dt is tau/40 they must agree within the first-order error bound."""
        amplitude = 0.1
        trap, analytic = _rc_response(resistance, capacitance, 200, "trap", amplitude)
        be, _ = _rc_response(resistance, capacitance, 200, "be", amplitude)
        gap = np.max(np.abs(trap.voltage("out") - be.voltage("out")))
        assert gap < 0.05 * amplitude
        assert np.max(np.abs(trap.voltage("out") - analytic)) < 0.01 * amplitude

    @settings(max_examples=15, deadline=None)
    @given(
        resistance=st.floats(min_value=1e2, max_value=1e5),
        capacitance=st.floats(min_value=1e-12, max_value=1e-9),
        method=st.sampled_from(["be", "trap"]),
    )
    def test_halving_the_timestep_shrinks_the_error_monotonically(
        self, resistance, capacitance, method
    ):
        errors = []
        for n_steps in (50, 100, 200):
            result, analytic = _rc_response(resistance, capacitance, n_steps, method)
            errors.append(np.max(np.abs(result.voltage("out") - analytic)))
        assert errors[0] > errors[1] > errors[2]

    @settings(max_examples=10, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_batched_bit_identical_to_sequential_loop(self, five_t, points):
        """``run_tran_many`` over a random candidate population returns
        waveforms bit-identical to the per-candidate ``run_tran`` loop."""
        from repro.solvers import SearchSpace

        space = SearchSpace(five_t)
        population = [space.decode(np.array(point)) for point in points]
        solutions = []
        for widths in population:
            try:
                solutions.append(
                    solve_dc(five_t.build(widths), initial_guess=five_t.initial_guess())
                )
            except ConvergenceError:
                continue
        if not solutions:
            return
        batched = run_tran_many(solutions, t_stop=50e-9, n_steps=20)
        for solution, outcome in zip(solutions, batched, strict=True):
            reference = run_tran(solution, t_stop=50e-9, n_steps=20)
            assert np.array_equal(reference.waveforms, outcome.waveforms)
            assert reference.newton_iterations == outcome.newton_iterations
            assert np.array_equal(reference.times, outcome.times)


class TestTranBatchGrouping:
    def test_circuits_differing_only_in_capacitors_never_share_a_group(self):
        """The DC structure key is capacitor-blind (capacitors are open at
        DC); the transient grouping must not be -- a batch mixing circuits
        that differ only in capacitor count/connectivity must still return
        waveforms bit-identical to the sequential loop, in both orders."""
        plain = _rc_circuit(1e3, 1e-9)
        extra = _rc_circuit(1e3, 1e-9)
        extra.add_capacitor("C2", "in", "out", 2e-10)
        solutions = [solve_dc(plain), solve_dc(extra)]
        for ordered in (solutions, solutions[::-1]):
            batched = run_tran_many(ordered, t_stop=5e-6, n_steps=50)
            for solution, outcome in zip(ordered, batched, strict=True):
                reference = run_tran(solution, t_stop=5e-6, n_steps=50)
                assert np.array_equal(reference.waveforms, outcome.waveforms)


# ----------------------------------------------------------------------
# Batched parity and per-candidate isolation at the topology layer
# ----------------------------------------------------------------------
class TestTranMeasureParity:
    def test_measure_many_bit_identical_with_tran(self, five_t):
        population = make_population(five_t, 6, seed=3)
        sequential = [five_t.measure(w, analyses=TRAN) for w in population]
        outcomes = five_t.measure_many(population, analyses=TRAN)
        for reference, outcome in zip(sequential, outcomes, strict=True):
            assert outcome.ok
            assert outcome.result.metrics.has_tran
            assert_measurements_identical(reference, outcome.result)

    def test_backends_agree_with_tran(self, five_t):
        population = make_population(five_t, 3, seed=7)
        scalar = ScalarBackend().measure_many(five_t, population, analyses=TRAN)
        batched = BatchedBackend().measure_many(five_t, population, analyses=TRAN)
        for s, b in zip(scalar, batched, strict=True):
            assert s.ok and b.ok
            assert_measurements_identical(s.result, b.result)

    def test_poisoned_candidate_isolated_with_tran(self):
        poison = 3.456e-6
        topology = PoisonedFiveT(poison)
        population = make_population(topology, 3, seed=5)
        poisoned = dict(population[1])
        poisoned["M1"] = poison
        batch = [population[0], poisoned, population[2]]
        outcomes = topology.measure_many(batch, analyses=TRAN)
        assert not outcomes[1].ok and outcomes[1].error is not None
        for index in (0, 2):
            assert outcomes[index].ok
            assert outcomes[index].result.metrics.has_tran

    def test_corner_sweeps_with_tran_bit_identical(self, five_t):
        population = make_population(five_t, 2, seed=9)
        corners = ("tt", "ss", "ff")
        scalar = ScalarBackend().measure_many(
            five_t, population, corners=corners, analyses=TRAN
        )
        batched = BatchedBackend().measure_many(
            five_t, population, corners=corners, analyses=TRAN
        )
        for reference, sweep in zip(scalar, batched, strict=True):
            assert_sweeps_identical(reference, sweep)
        # The corner skew is physical: SS slews slower than FF.
        sweep = batched[0]
        slew = {
            corner.name: outcome.result.metrics.slew_v_per_s
            for corner, outcome in zip(sweep.corners, sweep.outcomes, strict=True)
        }
        assert slew["ss"] < slew["tt"] < slew["ff"]

    def test_default_analyses_unchanged_and_tran_optional(self, five_t):
        plain = five_t.measure(GOOD_WIDTHS["5T-OTA"])
        assert plain.tran is None
        assert not plain.metrics.has_tran
        with_tran = five_t.measure(GOOD_WIDTHS["5T-OTA"], analyses=TRAN)
        assert with_tran.tran is not None
        assert with_tran.metrics.has_tran
        # The AC triple is untouched by the extra analysis.
        assert np.array_equal(plain.metrics.as_array(), with_tran.metrics.as_array())

    def test_resolve_analyses_contract(self):
        assert resolve_analyses(None) == DEFAULT_ANALYSES
        assert resolve_analyses(("ac", "dc")) == DEFAULT_ANALYSES
        assert resolve_analyses(("tran",)) == TRAN_ANALYSES
        assert resolve_analyses(["dc", "ac", "tran"]) == TRAN_ANALYSES
        with pytest.raises(ValueError, match="unknown analyses"):
            resolve_analyses(("dc", "noise"))


# ----------------------------------------------------------------------
# Golden traces: known-good waveforms per topology at the nominal corner
# ----------------------------------------------------------------------
class TestGoldenTraces:
    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_every_registered_topology_is_pinned(self, golden):
        assert set(golden) == set(available_topologies())

    # Parametrized over the fixture's own keys so a future topology's
    # pinned trace is checked automatically once the generator adds it.
    @pytest.mark.parametrize("name", sorted(json.loads(GOLDEN_PATH.read_text())))
    def test_step_response_matches_golden_trace(self, golden, name):
        entry = golden[name]
        topology = topology_by_name(name)
        # The testbench knobs the fixture was generated with still apply.
        assert topology.tran_t_stop == entry["t_stop"]
        assert topology.tran_steps == entry["n_steps"]
        assert topology.tran_method == entry["method"]
        assert topology.tran_step_v == entry["step_amplitude"]

        measurement = topology.measure(entry["widths"], analyses=TRAN)
        waveform = measurement.tran.voltage(entry["output_node"])
        sampled = waveform[entry["sample_indices"]]
        times = measurement.tran.times[entry["sample_indices"]]
        np.testing.assert_allclose(times, entry["times"], rtol=1e-12)
        # rtol leaves room for BLAS reduction-order drift across platforms
        # while catching any real change to stamps or integration.
        np.testing.assert_allclose(sampled, entry["output"], rtol=1e-8)

        metrics = measurement.metrics
        pinned = entry["metrics"]
        assert metrics.slew_v_per_s == pytest.approx(pinned["slew_v_per_s"], rel=1e-6)
        dt = entry["t_stop"] / entry["n_steps"]
        assert abs(metrics.settling_time_s - pinned["settling_time_s"]) <= dt
        assert metrics.overshoot_frac == pytest.approx(pinned["overshoot_frac"], abs=1e-9)


# ----------------------------------------------------------------------
# Metric extraction on synthetic waveforms
# ----------------------------------------------------------------------
class _FakeTran:
    def __init__(self, times, values):
        self.times = np.asarray(times, dtype=float)
        self._values = np.asarray(values, dtype=float)

    def voltage(self, node):
        return self._values


class TestTranMetricExtraction:
    def test_ramp_slew_rate(self):
        times = np.linspace(0.0, 1e-6, 11)
        tran = _FakeTran(times, times * 2e6)  # 2 V/us ramp
        metrics = extract_tran_metrics(tran, "out")
        assert metrics.slew_v_per_s == pytest.approx(2e6)

    def test_slew_excludes_first_interval_feedthrough(self):
        """Regression: the t = 0+ step feeds through the load cap as a
        spike in the very first finite difference.  Before the fix the
        spike *was* the reported slew; now the first interval is excluded
        and the amplifier's own steepest interval wins."""
        times = np.linspace(0.0, 1e-6, 11)
        values = times * 2e6
        values[0] = -0.3  # feedthrough discontinuity: first diff = 5e6 V/s
        metrics = extract_tran_metrics(_FakeTran(times, values), "out")
        first_rate = abs(values[1] - values[0]) / (times[1] - times[0])
        assert first_rate > 2e6  # the contaminated rate the fix discards
        assert metrics.slew_v_per_s == pytest.approx(2e6)

    def test_slew_two_sample_waveform_keeps_only_rate(self):
        """With a single finite difference there is nothing to exclude."""
        metrics = extract_tran_metrics(_FakeTran([0.0, 1e-6], [0.0, 1.0]), "out")
        assert metrics.slew_v_per_s == pytest.approx(1e6)

    def test_exponential_settling_and_no_overshoot(self):
        tau = 1e-7
        times = np.linspace(0.0, 10 * tau, 1001)
        tran = _FakeTran(times, 1.0 - np.exp(-times / tau))
        metrics = extract_tran_metrics(tran, "out", settle_tol=0.02)
        # |v - vf| <= 0.02 * delta happens near t = -tau*ln(0.02) ~ 3.9 tau.
        assert metrics.settling_time_s == pytest.approx(3.91 * tau, rel=0.05)
        assert metrics.overshoot_frac == 0.0

    def test_overshoot_of_damped_step(self):
        times = np.linspace(0.0, 1.0, 2001)
        omega, zeta = 30.0, 0.3
        wd = omega * np.sqrt(1 - zeta**2)
        values = 1.0 - np.exp(-zeta * omega * times) * (
            np.cos(wd * times) + zeta / np.sqrt(1 - zeta**2) * np.sin(wd * times)
        )
        tran = _FakeTran(times, values)
        metrics = extract_tran_metrics(tran, "out")
        expected = np.exp(-np.pi * zeta / np.sqrt(1 - zeta**2))
        assert metrics.overshoot_frac == pytest.approx(expected, rel=0.02)

    def test_falling_step_mirrors_rising(self):
        tau = 1e-7
        times = np.linspace(0.0, 10 * tau, 1001)
        rising = extract_tran_metrics(_FakeTran(times, 1.0 - np.exp(-times / tau)), "out")
        falling = extract_tran_metrics(_FakeTran(times, np.exp(-times / tau)), "out")
        assert falling.settling_time_s == rising.settling_time_s
        assert falling.overshoot_frac == rising.overshoot_frac == 0.0
        assert falling.slew_v_per_s == pytest.approx(rising.slew_v_per_s)

    def test_flat_waveform_degenerates_gracefully(self):
        times = np.linspace(0.0, 1e-6, 11)
        metrics = extract_tran_metrics(_FakeTran(times, np.full(11, 0.5)), "out")
        assert metrics.slew_v_per_s == 0.0
        assert metrics.settling_time_s == 0.0
        assert metrics.overshoot_frac == 0.0

    def test_base_metrics_carried_over(self):
        times = np.linspace(0.0, 1e-6, 11)
        base = PerformanceMetrics(25.0, 5e6, 8e7)
        merged = extract_tran_metrics(_FakeTran(times, times * 1e6), "out", base=base)
        assert merged.gain_db == 25.0 and merged.ugf_hz == 8e7
        assert merged.has_tran
        with pytest.raises(ValueError, match="settle_tol"):
            extract_tran_metrics(_FakeTran(times, times), "out", settle_tol=0.0)


# ----------------------------------------------------------------------
# DesignSpec transient fields
# ----------------------------------------------------------------------
class TestTransientSpec:
    METRICS = PerformanceMetrics(
        25.0, 5e6, 8e7, slew_v_per_s=5e5, settling_time_s=1.5e-7, overshoot_frac=0.05
    )

    def test_ac_only_spec_unchanged(self):
        spec = DesignSpec(20.0, 4e6, 7e7)
        assert not spec.requires_tran
        assert set(spec.miss_fractions(self.METRICS)) == {"gain_db", "f3db_hz", "ugf_hz"}
        assert spec.satisfied(self.METRICS)

    def test_direction_of_each_transient_target(self):
        base = dict(gain_db=20.0, f3db_hz=4e6, ugf_hz=7e7)
        assert DesignSpec(**base, slew_v_per_s=4e5).satisfied(self.METRICS)
        assert not DesignSpec(**base, slew_v_per_s=6e5).satisfied(self.METRICS)
        assert DesignSpec(**base, settling_time_s=2e-7).satisfied(self.METRICS)
        assert not DesignSpec(**base, settling_time_s=1e-7).satisfied(self.METRICS)
        assert DesignSpec(**base, overshoot_frac=0.1).satisfied(self.METRICS)
        assert not DesignSpec(**base, overshoot_frac=0.01).satisfied(self.METRICS)

    def test_unmeasured_transient_metric_fails_and_scores_full_miss(self):
        spec = DesignSpec(20.0, 4e6, 7e7, slew_v_per_s=4e5)
        ac_only = PerformanceMetrics(25.0, 5e6, 8e7)
        assert not spec.satisfied(ac_only)
        assert spec.miss_fractions(ac_only)["slew_v_per_s"] == 1.0

    def test_miss_fractions_directions(self):
        spec = DesignSpec(
            20.0, 4e6, 7e7,
            slew_v_per_s=1e6, settling_time_s=1e-7, overshoot_frac=0.025,
        )
        misses = spec.miss_fractions(self.METRICS)
        assert misses["slew_v_per_s"] == pytest.approx(0.5)  # 5e5 vs 1e6 floor
        assert misses["settling_time_s"] == pytest.approx(0.5)  # 1.5e-7 vs 1e-7 cap
        assert misses["overshoot_frac"] == pytest.approx(1.0)  # 0.05 vs 0.025 cap

    def test_rel_tol_loosens_in_the_right_direction(self):
        base = dict(gain_db=20.0, f3db_hz=4e6, ugf_hz=7e7)
        tight_settle = DesignSpec(**base, settling_time_s=1.4e-7)
        assert not tight_settle.satisfied(self.METRICS)
        assert tight_settle.satisfied(self.METRICS, rel_tol=0.1)
        tight_slew = DesignSpec(**base, slew_v_per_s=5.4e5)
        assert not tight_slew.satisfied(self.METRICS)
        assert tight_slew.satisfied(self.METRICS, rel_tol=0.1)

    def test_validation_and_scaling(self):
        with pytest.raises(ValueError, match="positive"):
            DesignSpec(20.0, 4e6, 7e7, settling_time_s=0.0)
        spec = DesignSpec(20.0, 4e6, 7e7, slew_v_per_s=1e6)
        doubled = spec.scaled({"gain_db": 2.0, "slew_v_per_s": 2.0})
        assert doubled.gain_db == 40.0 and doubled.slew_v_per_s == 2e6
        assert doubled.settling_time_s is None
        # Factors for unset fields are ignored.
        assert spec.scaled({"settling_time_s": 2.0}) == spec

    def test_from_metrics_adopts_measured_transient(self):
        spec = DesignSpec.from_metrics(self.METRICS, slack=0.1)
        assert spec.slew_v_per_s == pytest.approx(4.5e5)  # floor derated down
        assert spec.settling_time_s == pytest.approx(1.65e-7)  # cap derated up
        assert spec.overshoot_frac == pytest.approx(0.055)
        # Zero overshoot cannot become a positive ceiling -> left unset.
        monotone = replace(self.METRICS, overshoot_frac=0.0)
        assert DesignSpec.from_metrics(monotone).overshoot_frac is None
        # AC-only metrics produce an AC-only spec (pre-transient behavior).
        assert not DesignSpec.from_metrics(PerformanceMetrics(25.0, 5e6, 8e7)).requires_tran

    def test_tighten_spec_preserves_transient_targets(self):
        original = DesignSpec(25.0, 5e6, 8e7, settling_time_s=1e-7, slew_v_per_s=1e6)
        measured = PerformanceMetrics(
            24.0, 4e6, 7e7, slew_v_per_s=5e5, settling_time_s=2e-7, overshoot_frac=0.0
        )
        tightened = tighten_spec(original, original, measured)
        # AC targets tightened...
        assert tightened.gain_db > original.gain_db
        # ...transient targets carried through unchanged (the encoder
        # cannot express them, Stage IV keeps judging the originals).
        assert tightened.settling_time_s == original.settling_time_s
        assert tightened.slew_v_per_s == original.slew_v_per_s


# ----------------------------------------------------------------------
# Requests, cache and serving
# ----------------------------------------------------------------------
class TestTransientRequests:
    def _spec(self, **kwargs):
        return DesignSpec(25.0, 5e6, 8e7, **kwargs)

    def test_transient_spec_pulls_tran_analysis_in(self):
        plain = SizingRequest(topology="5T-OTA", spec=self._spec())
        assert plain.analyses == DEFAULT_ANALYSES
        tran = SizingRequest(
            topology="5T-OTA", spec=self._spec(slew_v_per_s=1e5)
        )
        assert tran.analyses == TRAN_ANALYSES
        explicit = SizingRequest(
            topology="5T-OTA", spec=self._spec(), analyses=("dc", "ac", "tran")
        )
        assert explicit.analyses == TRAN_ANALYSES

    def test_json_round_trip_with_transient_fields(self):
        request = SizingRequest(
            topology="5T-OTA",
            spec=self._spec(slew_v_per_s=1e5, settling_time_s=3e-7),
            id="t1",
        )
        payload = json.loads(request.to_json_line())
        assert payload["slew_v_per_s"] == 1e5
        assert payload["analyses"] == ["dc", "ac", "tran"]
        assert "overshoot_frac" not in payload  # unset targets stay absent
        restored = SizingRequest.from_json_line(request.to_json_line())
        assert restored == request

    def test_ac_only_wire_format_unchanged(self):
        payload = SizingRequest(topology="5T-OTA", spec=self._spec(), id="r").to_json()
        assert set(payload) == {
            "id", "topology", "gain_db", "f3db_hz", "ugf_hz",
            "max_iterations", "rel_tol", "method", "budget", "corners",
        }

    def test_response_json_round_trips_transient_metrics(self):
        response = SizingResponse(
            request_id="r", topology="5T-OTA", success=True,
            widths={"M1": 1e-6},
            metrics=PerformanceMetrics(
                25.0, 5e6, 8e7,
                slew_v_per_s=5e5, settling_time_s=1.5e-7, overshoot_frac=0.0,
            ),
            iterations=1, spice_simulations=1, wall_time_s=0.1,
        )
        restored = SizingResponse.from_json_line(response.to_json_line())
        assert restored == response
        # AC-only responses keep the pre-transient metrics payload.
        plain = SizingResponse(
            request_id="r", topology="5T-OTA", success=True, widths=None,
            metrics=PerformanceMetrics(25.0, 5e6, 8e7),
            iterations=1, spice_simulations=1, wall_time_s=0.1,
        )
        assert set(json.loads(plain.to_json_line())["metrics"]) == {
            "gain_db", "f3db_hz", "ugf_hz",
        }

    def test_cache_keys_never_collide_across_transient_targets(self):
        requests = [
            SizingRequest(topology="5T-OTA", spec=self._spec(), id="a"),
            SizingRequest(topology="5T-OTA", spec=self._spec(), id="b",
                          analyses=("dc", "ac", "tran")),
            SizingRequest(topology="5T-OTA", spec=self._spec(slew_v_per_s=1e5), id="c"),
            SizingRequest(topology="5T-OTA", spec=self._spec(slew_v_per_s=2e5), id="d"),
            SizingRequest(topology="5T-OTA", spec=self._spec(settling_time_s=1e-7), id="e"),
        ]
        keys = {ResultCache.key(r) for r in requests}
        assert len(keys) == len(requests)

    def test_near_duplicate_transfer_revalidates_transient_targets(self):
        cache = ResultCache()
        cached = SizingRequest(
            topology="5T-OTA", spec=self._spec(slew_v_per_s=1e5), id="x"
        )
        response = SizingResponse(
            request_id="x", topology="5T-OTA", success=True,
            widths={"M1": 1e-6},
            metrics=PerformanceMetrics(
                26.0, 6e6, 9e7,
                slew_v_per_s=1.004e5, settling_time_s=1e-7, overshoot_frac=0.0,
            ),
            iterations=1, spice_simulations=1, wall_time_s=0.1,
        )
        cache.put(cached, response)
        # Both near-duplicates quantize onto the cached key (1.00e5), but
        # the cached design's measured slew (1.004e5) only satisfies the
        # looser exact target -- the tighter request must miss.
        tighter = SizingRequest(
            topology="5T-OTA", spec=self._spec(slew_v_per_s=1.0042e5), id="y"
        )
        assert cache.get(tighter) is None
        looser = SizingRequest(
            topology="5T-OTA", spec=self._spec(slew_v_per_s=1.0002e5), id="z"
        )
        assert cache.get(looser) is not None


class TestTransientServing:
    """End-to-end: an engine round measuring and judging transient specs."""

    @pytest.fixture(scope="class")
    def serving(self, nmos_lut, pmos_lut):
        from repro.core.bundle import SizingModel
        from repro.datagen import SequenceBuilder, SequenceConfig
        from repro.datagen.serialize import ParsedParams
        from repro.devices import NMOS_65NM, PMOS_65NM
        from repro.topologies import FiveTransistorOTA

        topology = FiveTransistorOTA()
        measurement = topology.measure(GOOD_WIDTHS["5T-OTA"])
        params = {
            group.name: dict(measurement.device_params[group.name])
            for group in topology.groups
        }

        class _FixedModel(SizingModel):
            def __init__(self):
                builder = SequenceBuilder(topology, SequenceConfig())
                super().__init__(
                    transformer=None, bpe=None, vocab=None,
                    sequence_config=builder.config,
                    builders={topology.name: builder},
                    luts={NMOS_65NM.name: nmos_lut, PMOS_65NM.name: pmos_lut},
                )

            def predict_params(self, topology_name, spec, max_len=None):
                values = {g: dict(p) for g, p in params.items()}
                return ParsedParams(values=values, complete=True), "<fixed>"

            def predict_params_many(self, specs_by_topology, max_len=None):
                return {
                    name: [self.predict_params(name, spec) for spec in specs]
                    for name, specs in specs_by_topology.items()
                }

        engine = SizingEngine(_FixedModel(), cache_size=0)
        engine.adopt_topology(topology)
        widths = engine.widths_from_params(topology, params)
        measured = topology.measure(widths, analyses=TRAN).metrics
        return engine, topology, measured

    def test_success_and_failure_judged_on_transient_targets(self, serving):
        engine, topology, measured = serving
        base = dict(
            gain_db=measured.gain_db * 0.97,
            f3db_hz=measured.f3db_hz * 0.9,
            ugf_hz=measured.ugf_hz * 0.9,
        )
        ok = engine.size(
            SizingRequest(
                topology=topology.name,
                spec=DesignSpec(**base, slew_v_per_s=measured.slew_v_per_s * 0.5),
                max_iterations=1,
            )
        )
        assert ok.success
        assert ok.metrics.has_tran
        assert ok.metrics.slew_v_per_s == pytest.approx(measured.slew_v_per_s)

        impossible = engine.size(
            SizingRequest(
                topology=topology.name,
                spec=DesignSpec(**base, settling_time_s=measured.settling_time_s * 0.01),
                max_iterations=2,
            )
        )
        assert not impossible.success
        assert impossible.metrics is not None  # best iterate still reported
        assert impossible.metrics.has_tran

    def test_plain_requests_unaffected_by_transient_neighbours(self, serving):
        """One batch mixing AC-only and transient requests: the AC-only
        response matches a batch without any transient neighbour."""
        engine, topology, measured = serving
        base = dict(
            gain_db=measured.gain_db * 0.97,
            f3db_hz=measured.f3db_hz * 0.9,
            ugf_hz=measured.ugf_hz * 0.9,
        )
        plain_request = SizingRequest(
            topology=topology.name, spec=DesignSpec(**base), id="plain",
            max_iterations=1,
        )
        mixed = engine.size_batch(
            [
                plain_request,
                SizingRequest(
                    topology=topology.name,
                    spec=DesignSpec(**base, slew_v_per_s=measured.slew_v_per_s * 0.5),
                    id="tran", max_iterations=1,
                ),
            ]
        )
        alone = engine.size_batch([replace(plain_request, id="plain")])
        by_id = {r.request_id: r for r in mixed}
        assert by_id["plain"].success and by_id["tran"].success
        assert not by_id["plain"].metrics.has_tran
        assert by_id["tran"].metrics.has_tran
        assert by_id["plain"].widths == alone[0].widths
        assert np.array_equal(
            by_id["plain"].metrics.as_array(), alone[0].metrics.as_array()
        )

    def test_solver_method_honors_analyses_selector(self, serving):
        """A registry-dispatched solver (method != copilot) with
        ``analyses=tran`` on an AC-only spec must measure and report the
        transient metrics the CLI flag promises."""
        engine, topology, measured = serving
        spec = DesignSpec(
            gain_db=measured.gain_db * 0.9,
            f3db_hz=measured.f3db_hz * 0.5,
            ugf_hz=measured.ugf_hz * 0.5,
        )
        response = engine.size(
            SizingRequest(
                topology=topology.name, spec=spec, method="pso", budget=20,
                analyses=("dc", "ac", "tran"),
            )
        )
        assert response.method == "pso"
        assert response.error is None
        assert response.metrics is not None
        assert response.metrics.has_tran
        # ...and without the selector the solver path stays AC-only.
        plain = engine.size(
            SizingRequest(topology=topology.name, spec=spec, method="pso", budget=20)
        )
        assert plain.metrics is not None and not plain.metrics.has_tran

    def test_solver_rel_tol_loosens_transient_caps(self):
        """The solver path's derated spec must loosen max targets *up*,
        matching Stage IV's satisfied(rel_tol=...) semantics."""
        from repro.service.engine import _derated_spec

        spec = DesignSpec(
            25.0, 5e6, 8e7,
            slew_v_per_s=1e6, settling_time_s=1e-7, overshoot_frac=0.1,
        )
        derated = _derated_spec(spec, 0.02)
        assert derated.gain_db == pytest.approx(25.0 * 0.98)
        assert derated.slew_v_per_s == pytest.approx(1e6 * 0.98)  # floor down
        assert derated.settling_time_s == pytest.approx(1e-7 * 1.02)  # cap up
        assert derated.overshoot_frac == pytest.approx(0.1 * 1.02)
        assert _derated_spec(spec, 0.0) == spec
        # A metric exactly at the loosened boundary passes both judgments.
        boundary = PerformanceMetrics(
            25.0, 5e6, 8e7,
            slew_v_per_s=1e6 * 0.99, settling_time_s=1e-7 * 1.01, overshoot_frac=0.1,
        )
        assert spec.satisfied(boundary, rel_tol=0.02)
        assert derated.satisfied(boundary)

    def test_objective_scores_transient_shortfall(self, serving):
        _, topology, measured = serving
        spec = DesignSpec(
            gain_db=measured.gain_db * 0.9,
            f3db_hz=measured.f3db_hz * 0.5,
            ugf_hz=measured.ugf_hz * 0.5,
            settling_time_s=measured.settling_time_s * 0.01,  # unreachable cap
        )
        objective = SearchObjective(topology, spec)
        point = np.full(objective.space.dimension, 0.5)
        value = float(objective.evaluate_many(point[None, :])[0])
        assert value > 0.0  # AC passes, the settling cap binds
