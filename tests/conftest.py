"""Shared fixtures for the test suite.

Expensive artifacts (LUTs, measured OTA designs) are session-scoped so the
several hundred tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import NMOS_65NM, PMOS_65NM
from repro.lut import build_lut
from repro.topologies import CurrentMirrorOTA, FiveTransistorOTA, TwoStageOTA


@pytest.fixture(scope="session")
def nmos_lut():
    return build_lut(NMOS_65NM)


@pytest.fixture(scope="session")
def pmos_lut():
    return build_lut(PMOS_65NM)


@pytest.fixture(scope="session")
def five_t():
    return FiveTransistorOTA()


@pytest.fixture(scope="session")
def cm_ota():
    return CurrentMirrorOTA()


@pytest.fixture(scope="session")
def two_stage():
    return TwoStageOTA()


#: A known-good width vector per topology (regions OK, all saturated).
GOOD_WIDTHS = {
    "5T-OTA": {"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6},
    "CM-OTA": {"M1": 1.0e-6, "M3": 15e-6, "M5": 4e-6, "M6": 2.0e-6, "M8": 0.8e-6},
    "2S-OTA": {"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6, "M6": 5e-6, "M7": 2.8e-6},
}


@pytest.fixture(scope="session")
def five_t_measurement(five_t):
    return five_t.measure(GOOD_WIDTHS["5T-OTA"])


@pytest.fixture(scope="session")
def cm_measurement(cm_ota):
    return cm_ota.measure(GOOD_WIDTHS["CM-OTA"])


@pytest.fixture(scope="session")
def two_stage_measurement(two_stage):
    return two_stage.measure(GOOD_WIDTHS["2S-OTA"])


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)
