"""Shared fixtures and helpers for the test suite.

Expensive artifacts (LUTs, measured OTA designs) are session-scoped so the
several hundred tests stay fast.

The eval-backend test harness -- candidate-population builders, poisoned
topologies (deterministic :class:`ConvergenceError` generators), the
call-counting backend, and the bit-identity assertion helpers the parity
suites share -- lives here too, so ``test_solvers`` / ``test_corners`` /
``test_service`` / ``test_tran`` compare batched against sequential
evaluation through one vocabulary instead of four copies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bundle import SizingModel
from repro.datagen import SequenceBuilder, SequenceConfig
from repro.datagen.serialize import ParsedParams
from repro.devices import NMOS_65NM, PMOS_65NM, resolve_corner
from repro.lut import build_lut
from repro.solvers import BatchedBackend, SearchSpace
from repro.topologies import CurrentMirrorOTA, FiveTransistorOTA, TwoStageOTA


@pytest.fixture(scope="session")
def nmos_lut():
    return build_lut(NMOS_65NM)


@pytest.fixture(scope="session")
def pmos_lut():
    return build_lut(PMOS_65NM)


@pytest.fixture(scope="session")
def five_t():
    return FiveTransistorOTA()


@pytest.fixture(scope="session")
def cm_ota():
    return CurrentMirrorOTA()


@pytest.fixture(scope="session")
def two_stage():
    return TwoStageOTA()


#: A known-good width vector per topology (regions OK, all saturated).
GOOD_WIDTHS = {
    "5T-OTA": {"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6},
    "CM-OTA": {"M1": 1.0e-6, "M3": 15e-6, "M5": 4e-6, "M6": 2.0e-6, "M8": 0.8e-6},
    "2S-OTA": {"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6, "M6": 5e-6, "M7": 2.8e-6},
    "FC-OTA": {
        "M1": 15.8e-6, "M0": 2.9e-6, "M3": 8e-6,
        "M5": 4.5e-6, "M7": 2.9e-6, "M9": 5.5e-6,
    },
    "TELE-OTA": {
        "M1": 15.8e-6, "M0": 2.9e-6, "M3": 2.9e-6, "M5": 6e-6, "M7": 3e-6,
    },
}


@pytest.fixture(scope="session")
def five_t_measurement(five_t):
    return five_t.measure(GOOD_WIDTHS["5T-OTA"])


@pytest.fixture(scope="session")
def cm_measurement(cm_ota):
    return cm_ota.measure(GOOD_WIDTHS["CM-OTA"])


@pytest.fixture(scope="session")
def two_stage_measurement(two_stage):
    return two_stage.measure(GOOD_WIDTHS["2S-OTA"])


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


# ----------------------------------------------------------------------
# Shared eval-backend test harness
# ----------------------------------------------------------------------
def make_population(topology, count: int, seed: int = 11) -> list[dict[str, float]]:
    """Random width vectors from the topology's search box (fixed seed)."""
    generator = np.random.default_rng(seed)
    space = SearchSpace(topology)
    return [space.decode(space.random_point(generator)) for _ in range(count)]


class PoisonedFiveT(FiveTransistorOTA):
    """5T-OTA whose build plants an unsatisfiable current source when the
    marker M1 width appears -- a deterministic ConvergenceError generator
    (1 A pulled out of a floating node: only the gmin shunt can carry it,
    so every Newton strategy runs out of iterations).

    ``corner_name`` restricts the poison to one PVT corner, so a marked
    candidate converges at the other corners -- the per-(candidate,
    corner) isolation scenario.
    """

    def __init__(self, poison_width: float, corner_name: str | None = None):
        super().__init__()
        self._poison = poison_width
        self._corner_name = corner_name

    def build_circuit(self, widths, vcm=None, corner=None):
        circuit = super().build_circuit(widths, vcm=vcm, corner=corner)
        if widths.get("M1") == self._poison and (
            self._corner_name is None
            or resolve_corner(corner).name == self._corner_name
        ):
            circuit.add_isource("IPOISON", "poison", "0", dc=1.0)
        return circuit


class CountingBackend(BatchedBackend):
    """Records every bulk verification call: (topology name, #candidates)."""

    def __init__(self):
        self.calls: list[tuple[str, int]] = []

    def measure_many(self, topology, widths_list, **kwargs):
        self.calls.append((topology.name, len(widths_list)))
        return super().measure_many(topology, widths_list, **kwargs)


def assert_measurements_identical(reference, result) -> None:
    """Field-by-field bit-identity of two ``MeasurementResult`` objects
    (AC metrics, transient metrics, DC solution and device parameters)."""
    assert np.array_equal(
        reference.metrics.as_array(), result.metrics.as_array(), equal_nan=True
    )
    assert np.array_equal(
        reference.metrics.tran_as_array(), result.metrics.tran_as_array(), equal_nan=True
    )
    assert reference.dc.node_voltages == result.dc.node_voltages
    assert reference.dc.iterations == result.dc.iterations
    assert reference.dc.strategy == result.dc.strategy
    assert reference.device_params == result.device_params


def assert_outcomes_identical(reference, outcome) -> None:
    """One aligned ``MeasureOutcome`` pair: same verdict, and bit-identical
    measurements when both succeeded."""
    assert reference.ok == outcome.ok
    if not reference.ok:
        assert outcome.error is not None
        return
    assert_measurements_identical(reference.result, outcome.result)


def assert_sweeps_identical(reference, sweep) -> None:
    """One aligned ``CornerSweep`` pair, outcome by outcome."""
    assert reference.corners == sweep.corners
    for ref_outcome, outcome in zip(reference.outcomes, sweep.outcomes, strict=True):
        assert_outcomes_identical(ref_outcome, outcome)


class BatchedOracleModel(SizingModel):
    """A 'perfect transformer' stand-in: returns the device parameters of
    the dataset design whose metrics are closest to the request.  Shared
    by the engine-semantics tests (``test_service``) and the serving-layer
    tests (``test_serve``)."""

    def __init__(self, topology, records, luts):
        builder = SequenceBuilder(topology, SequenceConfig())
        super().__init__(
            transformer=None,
            bpe=None,
            vocab=None,
            sequence_config=builder.config,
            builders={topology.name: builder},
            luts=luts,
        )
        self._records = records
        self.single_calls = 0
        self.batch_calls = 0

    def predict_params(self, topology_name, spec, max_len=None):
        self.single_calls += 1

        def distance(record):
            return (
                abs(np.log(record.gain_db / spec.gain_db))
                + abs(np.log(record.f3db_hz / spec.f3db_hz))
                + abs(np.log(record.ugf_hz / spec.ugf_hz))
            )

        best = min(self._records, key=distance)
        values = {g: dict(p) for g, p in best.device_params.items()}
        return ParsedParams(values=values, complete=True), f"<oracle:{best.gain_db:.3f}>"

    def predict_params_many(self, specs_by_topology, max_len=None):
        outputs = {}
        self.batch_calls += 1
        for name, specs in specs_by_topology.items():
            outputs[name] = []
            for spec in specs:
                outputs[name].append(self.predict_params(name, spec, max_len))
                self.single_calls -= 1  # don't double count the delegation
        return outputs


@pytest.fixture(scope="session")
def oracle_setup():
    """A measured 5T-OTA mini-dataset plus shared LUTs for oracle models.

    Session-scoped: the dataset (real SPICE measurements) is generated
    once and shared by ``test_service`` and ``test_serve``."""
    from repro.datagen import DesignFilter, generate_dataset

    topology = FiveTransistorOTA()
    rng = np.random.default_rng(11)
    dataset = generate_dataset(
        topology, 10, rng,
        design_filter=DesignFilter(topology, check_icmr=False),
        max_attempts=400,
    )
    assert len(dataset) >= 6
    luts = {NMOS_65NM.name: build_lut(NMOS_65NM), PMOS_65NM.name: build_lut(PMOS_65NM)}
    return topology, dataset.records, luts


def assert_responses_identical(sequential, batched) -> None:
    """Field-by-field bit-identity of two ``SizingResponse`` lists."""
    assert len(sequential) == len(batched)
    for ref, got in zip(sequential, batched, strict=True):
        assert ref.request_id == got.request_id
        assert ref.success == got.success
        assert ref.widths == got.widths
        assert ref.iterations == got.iterations
        assert ref.spice_simulations == got.spice_simulations
        assert ref.decoded_texts == got.decoded_texts
        assert (ref.metrics is None) == (got.metrics is None)
        if ref.metrics is not None:
            assert np.array_equal(
                ref.metrics.as_array(), got.metrics.as_array(), equal_nan=True
            )
            assert np.array_equal(
                ref.metrics.tran_as_array(), got.metrics.tran_as_array(), equal_nan=True
            )
