"""Tests of the OTA topology generators (Fig. 6) and the cascode OTAs."""

import pytest

from repro.topologies import (
    ALL_TOPOLOGIES,
    FoldedCascodeOTA,
    TelescopicOTA,
    available_topologies,
    topology_by_name,
)

from tests.conftest import GOOD_WIDTHS

#: The two sparse-solver-scale cascode topologies (not part of the
#: paper's Fig. 6 trio, so they stay out of ALL_TOPOLOGIES).
CASCODE_TOPOLOGIES = (FoldedCascodeOTA, TelescopicOTA)


class TestRegistry:
    def test_topology_by_name(self):
        for factory in ALL_TOPOLOGIES:
            assert topology_by_name(factory.name).name == factory.name

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            topology_by_name("7T-OTA")


class TestStructure:
    @pytest.mark.parametrize("factory", ALL_TOPOLOGIES, ids=lambda f: f.name)
    def test_device_counts_match_paper(self, factory):
        topology = factory()
        circuit = topology.build(topology.nominal_widths())
        expected = {"5T-OTA": 5, "CM-OTA": 9, "2S-OTA": 7}[topology.name]
        assert len(circuit.mosfets) == expected

    @pytest.mark.parametrize("factory", ALL_TOPOLOGIES, ids=lambda f: f.name)
    def test_matching_constraints_enforced(self, factory):
        topology = factory()
        widths = topology.nominal_widths()
        circuit = topology.build(widths)
        for group in topology.groups:
            group_widths = {circuit.mosfet(d).width for d in group.devices}
            assert len(group_widths) == 1

    @pytest.mark.parametrize("factory", ALL_TOPOLOGIES, ids=lambda f: f.name)
    def test_load_capacitor_present(self, factory):
        topology = factory()
        circuit = topology.build(topology.nominal_widths())
        cl = [c for c in circuit.capacitors if c.name == "CL"]
        assert len(cl) == 1
        assert cl[0].capacitance == pytest.approx(500e-15)

    def test_two_stage_has_miller_cap(self, two_stage):
        circuit = two_stage.build(two_stage.nominal_widths())
        cc = [c for c in circuit.capacitors if c.name == "CC"]
        assert len(cc) == 1

    @pytest.mark.parametrize("factory", ALL_TOPOLOGIES, ids=lambda f: f.name)
    def test_differential_drive(self, factory):
        topology = factory()
        circuit = topology.build(topology.nominal_widths())
        assert circuit.vsource("VINP").ac == pytest.approx(0.5)
        assert circuit.vsource("VINN").ac == pytest.approx(-0.5)

    def test_device_to_group_mapping(self, cm_ota):
        mapping = cm_ota.device_to_group()
        assert mapping["M2"] == "M1"
        assert mapping["M7"] == "M6"
        assert mapping["M9"] == "M8"

    def test_missing_width_rejected(self, five_t):
        with pytest.raises(KeyError):
            five_t.build({"M1": 1e-6, "M3": 1e-5})

    def test_nonpositive_width_rejected(self, five_t):
        with pytest.raises(ValueError):
            five_t.build({"M1": -1e-6, "M3": 1e-5, "M5": 1e-6})


class TestCascodeTopologies:
    """The folded-cascode and telescopic OTAs: registry, structure, and
    known-good operating points (their golden step responses are pinned
    in test_tran.py alongside the paper trio's)."""

    def test_registered(self):
        for factory in CASCODE_TOPOLOGIES:
            assert factory.name in available_topologies()
            assert topology_by_name(factory.name).name == factory.name

    @pytest.mark.parametrize("factory", CASCODE_TOPOLOGIES, ids=lambda f: f.name)
    def test_device_counts(self, factory):
        topology = factory()
        circuit = topology.build(topology.nominal_widths())
        expected = {"FC-OTA": 11, "TELE-OTA": 9}[topology.name]
        assert len(circuit.mosfets) == expected

    @pytest.mark.parametrize("factory", CASCODE_TOPOLOGIES, ids=lambda f: f.name)
    def test_matching_and_testbench_structure(self, factory):
        topology = factory()
        circuit = topology.build(topology.nominal_widths())
        for group in topology.groups:
            assert len({circuit.mosfet(d).width for d in group.devices}) == 1
        cl = [c for c in circuit.capacitors if c.name == "CL"]
        assert len(cl) == 1 and cl[0].capacitance == pytest.approx(500e-15)
        assert circuit.vsource("VINP").ac == pytest.approx(0.5)
        assert circuit.vsource("VINN").ac == pytest.approx(-0.5)

    @pytest.mark.parametrize("factory", CASCODE_TOPOLOGIES, ids=lambda f: f.name)
    def test_mna_larger_than_paper_trio(self, factory):
        """The point of these circuits: a deeper MNA system than any of
        the paper's three topologies (the sparse-solver workload)."""
        topology = factory()
        circuit = topology.build(topology.nominal_widths())
        largest_paper = max(
            len(f().build(f().nominal_widths()).nodes()) for f in ALL_TOPOLOGIES
        )
        assert len(circuit.nodes()) > largest_paper

    @pytest.mark.parametrize("factory", CASCODE_TOPOLOGIES, ids=lambda f: f.name)
    def test_good_widths_pass_regions(self, factory):
        topology = factory()
        result = topology.measure(GOOD_WIDTHS[topology.name])
        assert topology.regions_ok(result.dc)

    @pytest.mark.parametrize("factory", CASCODE_TOPOLOGIES, ids=lambda f: f.name)
    def test_cascode_gain_exceeds_paper_trio(self, factory):
        """Cascoding buys the extra gain the paper trio can't reach."""
        topology = factory()
        metrics = topology.measure(GOOD_WIDTHS[topology.name]).metrics
        assert metrics.gain_db > 35.0

    @pytest.mark.parametrize("factory", CASCODE_TOPOLOGIES, ids=lambda f: f.name)
    def test_dpsfg_paths_enumerable(self, factory):
        topology = factory()
        inventory = topology.path_inventory()
        assert inventory.n_forward_paths > 0
        assert inventory.n_cycles > 0


class TestMeasurement:
    def test_5t_metrics_in_expected_band(self, five_t_measurement):
        metrics = five_t_measurement.metrics
        assert 20.0 < metrics.gain_db < 30.0

    def test_cm_higher_ugf_than_5t(self, five_t, cm_ota):
        """The CM-OTA's mirror gain K>1 buys UGF -- the Table I shape."""
        m5t = five_t.measure(GOOD_WIDTHS["5T-OTA"]).metrics
        mcm = cm_ota.measure(GOOD_WIDTHS["CM-OTA"]).metrics
        assert mcm.ugf_hz > m5t.ugf_hz

    def test_two_stage_higher_gain_lower_bw(self, five_t, two_stage):
        """Two cascaded stages: more gain, much lower bandwidth."""
        m5t = five_t.measure(GOOD_WIDTHS["5T-OTA"]).metrics
        m2s = two_stage.measure(GOOD_WIDTHS["2S-OTA"]).metrics
        assert m2s.gain_db > m5t.gain_db + 6.0, (m2s, m5t)
        assert m2s.f3db_hz < m5t.f3db_hz / 5.0

    @pytest.mark.parametrize("factory", ALL_TOPOLOGIES, ids=lambda f: f.name)
    def test_good_widths_pass_regions(self, factory):
        topology = factory()
        result = topology.measure(GOOD_WIDTHS[topology.name])
        assert topology.regions_ok(result.dc)

    def test_dp_weak_and_mirror_strong(self, five_t_measurement):
        ops = five_t_measurement.dc.operating_points
        assert ops["M3"].inversion_coefficient < 1.0
        assert ops["M1"].inversion_coefficient > 5.0

    def test_device_params_positive(self, cm_measurement):
        for params in cm_measurement.device_params.values():
            for value in params.values():
                assert value > 0

    def test_wider_dp_increases_gm(self, five_t):
        base = five_t.measure(GOOD_WIDTHS["5T-OTA"])
        wider = dict(GOOD_WIDTHS["5T-OTA"], M3=30e-6)
        more = five_t.measure(wider)
        assert more.device_params["M3"]["gm"] > base.device_params["M3"]["gm"]


class TestDPSFGCaches:
    @pytest.mark.parametrize("factory", ALL_TOPOLOGIES, ids=lambda f: f.name)
    def test_symbolic_dpsfg_cached(self, factory):
        topology = factory()
        assert topology.symbolic_dpsfg() is topology.symbolic_dpsfg()

    @pytest.mark.parametrize("factory", ALL_TOPOLOGIES, ids=lambda f: f.name)
    def test_path_inventory_nonempty(self, factory):
        topology = factory()
        inventory = topology.path_inventory()
        assert inventory.n_forward_paths > 0
        assert inventory.n_cycles > 0

    def test_structure_width_independent(self, five_t):
        """The DP-SFG structure must not depend on widths."""
        from repro.dpsfg import build_dpsfg

        a = build_dpsfg(five_t.build({"M1": 1e-6, "M3": 10e-6, "M5": 2e-6}), "out")
        b = build_dpsfg(five_t.build({"M1": 2e-6, "M3": 20e-6, "M5": 4e-6}), "out")
        assert sorted(a.graph.edges) == sorted(b.graph.edges)


class TestValidation:
    def test_validate_widths_complete(self, cm_ota):
        checked = cm_ota.validate_widths(
            {"M1": 1e-6, "M3": 1e-5, "M5": 2e-6, "M6": 2e-6, "M8": 1e-6}
        )
        assert set(checked) == set(cm_ota.group_names)

    def test_group_lookup(self, five_t):
        assert five_t.group("M3").role == "DP"
        with pytest.raises(KeyError):
            five_t.group("M9")

    def test_nominal_widths_inside_bounds(self, two_stage):
        for name, width in two_stage.nominal_widths().items():
            low, high = two_stage.group(name).width_bounds
            assert low <= width <= high
