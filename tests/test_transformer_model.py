"""Tests of the full transformer model, loss, optimizer and trainer."""

import numpy as np
import pytest

from repro.nlp import Vocabulary
from repro.transformer import (
    Adam,
    LRScheduler,
    SequencePair,
    Trainer,
    Transformer,
    TransformerConfig,
    WeightedCrossEntropy,
    make_batches,
    numeric_token_weights,
)


def tiny_config(**overrides):
    base = dict(
        vocab_size=12,
        d_model=16,
        n_heads=2,
        n_encoder_layers=1,
        n_decoder_layers=1,
        d_ff=24,
        dropout=0.0,
        max_len=20,
        seed=0,
    )
    base.update(overrides)
    return TransformerConfig(**base)


@pytest.fixture
def tiny_model():
    return Transformer(tiny_config())


def random_batch(rng, batch=2, t_src=5, t_tgt=4, vocab=12):
    src = rng.integers(4, vocab, size=(batch, t_src))
    tgt_in = rng.integers(4, vocab, size=(batch, t_tgt))
    tgt_out = rng.integers(4, vocab, size=(batch, t_tgt))
    src_pad = np.zeros((batch, t_src), dtype=bool)
    tgt_pad = np.zeros((batch, t_tgt), dtype=bool)
    return src, tgt_in, tgt_out, src_pad, tgt_pad


class TestModelForward:
    def test_logit_shape(self, tiny_model):
        rng = np.random.default_rng(0)
        src, tgt_in, _, src_pad, tgt_pad = random_batch(rng)
        logits = tiny_model.forward(src, tgt_in, src_pad, tgt_pad, training=False)
        assert logits.shape == (2, 4, 12)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransformerConfig(vocab_size=12, d_model=15, n_heads=2)
        with pytest.raises(ValueError):
            TransformerConfig(vocab_size=2)

    def test_length_limit_enforced(self, tiny_model):
        rng = np.random.default_rng(0)
        src = rng.integers(4, 12, size=(1, 25))
        with pytest.raises(ValueError):
            tiny_model.encode(src, np.zeros_like(src, dtype=bool), training=False)

    def test_causal_masking_no_future_leak(self, tiny_model):
        """Changing a later decoder input must not affect earlier logits."""
        rng = np.random.default_rng(1)
        src, tgt_in, _, src_pad, tgt_pad = random_batch(rng)
        logits_a = tiny_model.forward(src, tgt_in, src_pad, tgt_pad, training=False)
        tgt_mod = tgt_in.copy()
        tgt_mod[:, -1] = (tgt_mod[:, -1] + 1) % 12
        logits_b = tiny_model.forward(src, tgt_mod, src_pad, tgt_pad, training=False)
        np.testing.assert_allclose(logits_a[:, :-1], logits_b[:, :-1], atol=1e-10)

    def test_source_padding_invariance(self, tiny_model):
        """Padding the source with junk must not change the output."""
        rng = np.random.default_rng(2)
        src, tgt_in, _, src_pad, tgt_pad = random_batch(rng, batch=1)
        logits_a = tiny_model.forward(src, tgt_in, src_pad, tgt_pad, training=False)
        src_padded = np.concatenate([src, rng.integers(4, 12, size=(1, 3))], axis=1)
        pad_padded = np.concatenate([src_pad, np.ones((1, 3), dtype=bool)], axis=1)
        logits_b = tiny_model.forward(src_padded, tgt_in, pad_padded, tgt_pad, training=False)
        np.testing.assert_allclose(logits_a, logits_b, atol=1e-8)

    def test_full_model_gradcheck(self, tiny_model):
        rng = np.random.default_rng(3)
        src, tgt_in, tgt_out, src_pad, tgt_pad = random_batch(rng)
        loss_fn = WeightedCrossEntropy(pad_id=0)

        def compute_loss():
            logits = tiny_model.forward(src, tgt_in, src_pad, tgt_pad, training=False)
            return loss_fn(logits, tgt_out).loss

        tiny_model.zero_grad()
        logits = tiny_model.forward(src, tgt_in, src_pad, tgt_pad, training=False)
        result = loss_fn(logits, tgt_out)
        tiny_model.backward(result.dlogits)
        grads = dict(tiny_model.named_gradients())
        params = dict(tiny_model.named_parameters())

        rng2 = np.random.default_rng(11)
        eps = 1e-6
        for name in [
            "src_embed.table",
            "tgt_embed.table",
            "encoder0.self_attn.w_v.weight",
            "decoder0.cross_attn.w_q.weight",
            "decoder0.ffn.linear2.weight",
            "out_proj.bias",
        ]:
            flat = params[name].reshape(-1)
            gflat = grads[name].reshape(-1)
            for _ in range(3):
                i = int(rng2.integers(0, flat.size))
                original = flat[i]
                flat[i] = original + eps
                plus = compute_loss()
                flat[i] = original - eps
                minus = compute_loss()
                flat[i] = original
                numeric = (plus - minus) / (2 * eps)
                assert gflat[i] == pytest.approx(numeric, rel=1e-4, abs=1e-9), name


class TestDecoding:
    def test_incremental_matches_naive(self):
        model = Transformer(tiny_config(n_encoder_layers=2, n_decoder_layers=2))
        rng = np.random.default_rng(4)
        src = rng.integers(4, 12, size=(3, 6))
        src_pad = np.zeros_like(src, dtype=bool)
        src_pad[2, 4:] = True
        fast = model.greedy_decode(src, src_pad, bos_id=1, eos_id=2, max_len=15)
        naive = model.greedy_decode_naive(src, src_pad, bos_id=1, eos_id=2, max_len=15)
        assert fast == naive

    def test_decode_respects_max_len(self, tiny_model):
        rng = np.random.default_rng(5)
        src = rng.integers(4, 12, size=(1, 5))
        out = tiny_model.greedy_decode(src, np.zeros_like(src, dtype=bool), 1, 2, max_len=6)
        assert len(out[0]) <= 5

    def test_eos_truncation(self, tiny_model):
        rng = np.random.default_rng(6)
        src = rng.integers(4, 12, size=(2, 5))
        outs = tiny_model.greedy_decode(src, np.zeros_like(src, dtype=bool), 1, 2)
        for row in outs:
            assert 2 not in row


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_model, tmp_path):
        path = tmp_path / "model.npz"
        tiny_model.save(path)
        restored = Transformer.load(path)
        assert restored.config == tiny_model.config
        rng = np.random.default_rng(7)
        src, tgt_in, _, src_pad, tgt_pad = random_batch(rng)
        a = tiny_model.forward(src, tgt_in, src_pad, tgt_pad, training=False)
        b = restored.forward(src, tgt_in, src_pad, tgt_pad, training=False)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_state_dict_shape_mismatch_rejected(self, tiny_model):
        state = tiny_model.state_dict()
        state["out_proj.bias"] = np.zeros(3)
        with pytest.raises(ValueError):
            tiny_model.load_state_dict(state)


class TestLoss:
    def test_matches_manual_cross_entropy(self):
        logits = np.log(np.array([[[0.7, 0.2, 0.1]]]))
        targets = np.array([[0]])
        loss_fn = WeightedCrossEntropy(pad_id=2)
        result = loss_fn(logits, targets)
        assert result.loss == pytest.approx(-np.log(0.7), rel=1e-6)

    def test_pad_positions_ignored(self):
        rng = np.random.default_rng(8)
        logits = rng.normal(size=(1, 3, 5))
        loss_fn = WeightedCrossEntropy(pad_id=0)
        full = loss_fn(logits, np.array([[1, 2, 0]]))
        assert full.token_count == 2
        np.testing.assert_allclose(full.dlogits[0, 2], 0.0)

    def test_class_weights_shift_loss(self):
        rng = np.random.default_rng(9)
        logits = rng.normal(size=(1, 2, 4))
        targets = np.array([[1, 2]])
        plain = WeightedCrossEntropy(pad_id=0)(logits, targets).loss
        weights = np.ones(4)
        weights[1] = 10.0
        weighted = WeightedCrossEntropy(class_weights=weights, pad_id=0)(logits, targets).loss
        assert weighted != pytest.approx(plain)

    def test_numeric_token_weights_selection(self):
        vocab = Vocabulary.from_tokens(["1", ".", "-", "gmM1=", "uS ", "a"])
        weights = numeric_token_weights(vocab, numeric_weight=1.2)
        assert weights[vocab.token_to_id["1"]] == pytest.approx(1.2)
        assert weights[vocab.token_to_id["."]] == pytest.approx(1.2)
        assert weights[vocab.token_to_id["gmM1="]] == pytest.approx(1.0)
        assert weights[vocab.token_to_id["a"]] == pytest.approx(1.0)

    def test_gradient_direction(self):
        logits = np.zeros((1, 1, 3))
        loss_fn = WeightedCrossEntropy(pad_id=2)
        result = loss_fn(logits, np.array([[1]]))
        assert result.dlogits[0, 0, 1] < 0
        assert result.dlogits[0, 0, 0] > 0


class TestOptimizer:
    def test_adam_minimizes_quadratic(self):
        from repro.transformer import Linear

        rng = np.random.default_rng(10)
        layer = Linear(1, 1, rng)
        optimizer = Adam(layer, lr=0.05)
        x = np.array([[1.0]])
        for _ in range(600):
            layer.zero_grad()
            out = layer.forward(x)
            # Loss = (out - 3)^2
            layer.backward(2.0 * (out - 3.0))
            optimizer.step()
        assert float(layer.forward(x)[0, 0]) == pytest.approx(3.0, abs=0.02)

    def test_gradient_clipping(self):
        from repro.transformer import Linear

        rng = np.random.default_rng(11)
        layer = Linear(2, 2, rng)
        optimizer = Adam(layer, lr=1e-3, grad_clip=1e-3)
        layer.zero_grad()
        layer.forward(np.ones((1, 2)))
        layer.backward(np.full((1, 2), 1e6))
        before = layer.weight.copy()
        optimizer.step()
        # Clipped update magnitude must be bounded by lr scale.
        assert np.abs(layer.weight - before).max() < 1e-2

    def test_plateau_scheduler_decays(self):
        from repro.transformer import Linear

        layer = Linear(1, 1, np.random.default_rng(0))
        optimizer = Adam(layer, lr=1e-3)
        scheduler = LRScheduler(optimizer, mode="plateau", decay=0.5, patience=1)
        scheduler.step(1.0)
        assert optimizer.lr == pytest.approx(1e-3)
        scheduler.step(1.0)  # no improvement -> decay
        assert optimizer.lr == pytest.approx(5e-4)

    def test_cosine_scheduler_bounds(self):
        from repro.transformer import Linear

        layer = Linear(1, 1, np.random.default_rng(0))
        optimizer = Adam(layer, lr=1e-3)
        scheduler = LRScheduler(optimizer, mode="cosine", lr_min=1e-6, horizon_epochs=10)
        rates = [scheduler.step(1.0) for _ in range(12)]
        assert rates[-1] == pytest.approx(1e-6, rel=1e-3)
        assert all(r <= 1e-3 + 1e-12 for r in rates)

    def test_unknown_schedule_rejected(self):
        from repro.transformer import Linear

        layer = Linear(1, 1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            LRScheduler(Adam(layer), mode="bogus")


class TestTrainer:
    def test_make_batches_padding(self):
        pairs = [
            SequencePair(source=(5, 6), target=(7,)),
            SequencePair(source=(5,), target=(7, 8, 9)),
        ]
        batches = make_batches(pairs, batch_size=2, pad_id=0, bos_id=1, eos_id=2)
        assert len(batches) == 1
        batch = batches[0]
        assert batch.src.shape == (2, 2)
        assert batch.tgt_in[0, 0] == 1  # BOS
        assert batch.tgt_out[0, 1] == 2  # EOS after 1-token target
        assert batch.src_pad[1, 1]  # second row padded

    def test_overfits_copy_task(self):
        config = tiny_config(vocab_size=14, max_len=16, seed=2)
        model = Transformer(config)
        trainer = Trainer(
            model,
            WeightedCrossEntropy(pad_id=0),
            pad_id=0,
            bos_id=1,
            eos_id=2,
            lr=3e-3,
            batch_size=8,
            seed=0,
        )
        rng = np.random.default_rng(0)
        pairs = []
        for _ in range(32):
            seq = tuple(int(v) for v in rng.integers(4, 14, size=4))
            pairs.append(SequencePair(source=seq, target=seq))
        history = trainer.fit(pairs, pairs[:8], epochs=25)
        assert history.train_loss[-1] < history.train_loss[0] / 3
        predictions = trainer.predict([pairs[0].source])
        assert tuple(predictions[0]) == pairs[0].target

    def test_evaluate_returns_loss_and_accuracy(self):
        config = tiny_config()
        model = Transformer(config)
        trainer = Trainer(model, WeightedCrossEntropy(pad_id=0), 0, 1, 2)
        pairs = [SequencePair(source=(4, 5), target=(6, 7))]
        loss, accuracy = trainer.evaluate(pairs)
        assert loss > 0
        assert 0.0 <= accuracy <= 1.0
