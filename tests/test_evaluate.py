"""Tests of the evaluation utilities (correlations, study statistics)."""

import numpy as np
import pytest

from repro.core import DesignSpec, correlation_table
from repro.core.evaluate import PredictionSet, SizingStudy
from repro.core.flow import SizingResult
from repro.spice import PerformanceMetrics


def _prediction_set(noise):
    rng = np.random.default_rng(0)
    desired = {"M1": {p: list(rng.uniform(1, 2, 30)) for p in ("gm", "gds", "cds", "cgs")}}
    predicted = {
        "M1": {
            p: [v * (1.0 + noise * rng.normal()) for v in desired["M1"][p]]
            for p in ("gm", "gds", "cds", "cgs")
        }
    }
    return PredictionSet("5T-OTA", predicted=predicted, desired=desired, total=30)


class TestCorrelationTable:
    def test_perfect_prediction_gives_unit_correlation(self):
        table = correlation_table(_prediction_set(0.0))
        for value in table["M1"].values():
            assert value == pytest.approx(1.0)

    def test_noise_lowers_correlation(self):
        clean = correlation_table(_prediction_set(0.01))["M1"]["gm"]
        noisy = correlation_table(_prediction_set(0.5))["M1"]["gm"]
        assert noisy < clean

    def test_degenerate_series_gives_nan(self):
        prediction_set = PredictionSet(
            "5T-OTA",
            predicted={"M1": {"gm": [1.0, 1.0], "gds": [], "cds": [], "cgs": []}},
            desired={"M1": {"gm": [1.0, 2.0], "gds": [], "cds": [], "cgs": []}},
            total=2,
        )
        table = correlation_table(prediction_set)
        assert np.isnan(table["M1"]["gm"])
        assert np.isnan(table["M1"]["gds"])


def _result(success, sims, time_s, iterations):
    return SizingResult(
        success=success,
        spec=DesignSpec(20.0, 1e7, 1e8),
        widths=None,
        metrics=PerformanceMetrics(21.0, 1.1e7, 1.1e8) if success else None,
        iterations=iterations,
        spice_simulations=sims,
        wall_time_s=time_s,
    )


class TestSizingStudy:
    def test_classification(self):
        study = SizingStudy("5T-OTA", results=[
            _result(True, 1, 0.5, 1),   # single
            _result(True, 3, 1.5, 3),   # multi
            _result(False, 6, 3.0, 6),  # failure
        ])
        assert study.single_iteration_successes == 1
        assert study.multi_iteration_successes == 1
        assert study.failures == 1
        assert study.success_rate == pytest.approx(2 / 3)

    def test_average_times(self):
        study = SizingStudy("5T-OTA", results=[
            _result(True, 1, 0.5, 1),
            _result(True, 1, 1.5, 1),
            _result(True, 4, 4.0, 4),
        ])
        assert study.average_time(multi_only=False) == pytest.approx(1.0)
        assert study.average_time(multi_only=True) == pytest.approx(4.0)
        assert study.average_iterations_multi() == pytest.approx(4.0)
        assert study.average_spice_simulations() == pytest.approx(2.0)

    def test_empty_categories_give_nan(self):
        study = SizingStudy("5T-OTA", results=[_result(True, 1, 0.5, 1)])
        assert np.isnan(study.average_time(multi_only=True))
        assert np.isnan(study.average_iterations_multi())
