"""Tests of the SPICE deck exporter/parser round trip."""

import pytest

from repro.spice import solve_dc, run_ac, extract_metrics
from repro.spice.export import parse_netlist, to_spice

from tests.conftest import GOOD_WIDTHS


class TestExport:
    def test_deck_contains_all_elements(self, five_t):
        circuit = five_t.build(GOOD_WIDTHS["5T-OTA"])
        deck = to_spice(circuit, title="sized 5T-OTA")
        assert deck.startswith("* sized 5T-OTA")
        for device in circuit.mosfets:
            assert f"M{device.name} " in deck
        assert "CCL out 0" in deck
        assert ".model" in deck
        assert deck.rstrip().endswith(".end")

    def test_widths_serialized(self, five_t):
        circuit = five_t.build(GOOD_WIDTHS["5T-OTA"])
        deck = to_spice(circuit)
        assert "W=1.2e-06" in deck
        assert "L=1.8e-07" in deck


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["5T-OTA", "CM-OTA", "2S-OTA"])
    def test_parse_reproduces_circuit(self, name, five_t, cm_ota, two_stage):
        topology = {"5T-OTA": five_t, "CM-OTA": cm_ota, "2S-OTA": two_stage}[name]
        original = topology.build(GOOD_WIDTHS[name])
        restored = parse_netlist(to_spice(original), name=name)
        assert len(restored.mosfets) == len(original.mosfets)
        for a, b in zip(original.mosfets, restored.mosfets, strict=True):
            assert a.name == b.name
            assert a.width == pytest.approx(b.width, rel=1e-5)
            assert (a.drain, a.gate, a.source) == (b.drain, b.gate, b.source)
            assert a.tech.name == b.tech.name

    def test_round_trip_preserves_metrics(self, five_t):
        original = five_t.build(GOOD_WIDTHS["5T-OTA"])
        restored = parse_netlist(to_spice(original))
        metrics_a = extract_metrics(run_ac(solve_dc(original, five_t.initial_guess())), "out")
        metrics_b = extract_metrics(run_ac(solve_dc(restored, five_t.initial_guess())), "out")
        assert metrics_a.gain_db == pytest.approx(metrics_b.gain_db, abs=1e-3)
        assert metrics_a.ugf_hz == pytest.approx(metrics_b.ugf_hz, rel=1e-4)

    def test_sources_round_trip(self, five_t):
        original = five_t.build(GOOD_WIDTHS["5T-OTA"])
        restored = parse_netlist(to_spice(original))
        assert restored.vsource("VINP").ac == pytest.approx(0.5)
        assert restored.vsource("VDD").dc == pytest.approx(1.2)


class TestParserValidation:
    def test_unknown_card_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            parse_netlist("X1 a b weird")

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown device model"):
            parse_netlist("MX d g s s mystery_model W=1e-6 L=1e-7")

    def test_comments_and_directives_skipped(self):
        circuit = parse_netlist("* comment\n.model foo NMOS\nRR a 0 100\n.end\n")
        assert len(circuit.resistors) == 1


class TestExportProperties:
    """Property-based round trip of the SPICE exporter."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=40, deadline=None)
    @given(
        w1=st.floats(min_value=0.2e-6, max_value=100e-6),
        w3=st.floats(min_value=0.2e-6, max_value=100e-6),
        w5=st.floats(min_value=0.2e-6, max_value=100e-6),
        vcm=st.floats(min_value=0.3, max_value=0.9),
    )
    def test_roundtrip_property(self, five_t, w1, w3, w5, vcm):
        original = five_t.build({"M1": w1, "M3": w3, "M5": w5}, vcm=vcm)
        restored = parse_netlist(to_spice(original))
        assert restored.vsource("VINP").dc == pytest.approx(vcm, rel=1e-5)
        for a, b in zip(original.mosfets, restored.mosfets, strict=True):
            assert b.width == pytest.approx(a.width, rel=1e-5)
            assert b.length == pytest.approx(a.length, rel=1e-5)
