"""Tests of number formatting, CLT, vocabulary and restricted BPE."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp import (
    RestrictedBPE,
    Vocabulary,
    char_detokenize,
    char_tokenize,
    format_capacitance,
    format_conductance,
    format_engineering,
    parse_engineering,
    segment_text,
)
from repro.nlp.tokenizer import BOS, EOS, PAD


class TestNumberFormatting:
    @pytest.mark.parametrize(
        "value,unit,expected",
        [
            (2.5e-3, "S", "2.50mS"),
            (101e-6, "S", "101uS"),
            (5.41e-13, "F", "541fF"),
            (0.7e-18, "F", "0.700aF"),
            (1.0, "V", "1.00V"),
            (123.4e6, "Hz", "123MHz"),
            (20.13, "dB", "20.1dB"),
        ],
    )
    def test_known_values(self, value, unit, expected):
        assert format_engineering(value, unit) == expected

    def test_zero(self):
        assert format_engineering(0.0, "S") == "0S"

    def test_negative(self):
        assert format_engineering(-2.5e-3, "S") == "-2.50mS"

    def test_rounding_carry_into_next_prefix(self):
        # 999.7e-6 rounds to 1000 -> must bump to 1.00m.
        assert format_engineering(999.7e-6, "S") == "1.00mS"

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            format_engineering(float("nan"), "S")

    @settings(max_examples=100, deadline=None)
    @given(
        value=st.floats(min_value=1e-17, max_value=1e8),
        unit=st.sampled_from(["S", "F", "A"]),
    )
    def test_roundtrip_within_three_digits(self, value, unit):
        text = format_engineering(value, unit)
        parsed, parsed_unit = parse_engineering(text)
        assert parsed_unit == unit
        assert parsed == pytest.approx(value, rel=6e-3)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_engineering("hello")

    def test_unit_helpers(self):
        assert format_conductance(1.5e-3).endswith("mS")
        assert format_capacitance(2e-15).endswith("fF")


class TestCharTokenizer:
    def test_roundtrip(self):
        text = "Iin 1 I1 1/(sC+gds) V1"
        assert char_detokenize(char_tokenize(text)) == text

    def test_specials_stripped(self):
        assert char_detokenize([BOS, "a", EOS, PAD]) == "a"


class TestVocabulary:
    def test_specials_first(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0
        assert vocab.decode([vocab.bos_id], strip_special=False) == [BOS]

    def test_encode_unknown_maps_to_unk(self):
        vocab = Vocabulary.from_tokens(["a", "b"])
        ids = vocab.encode(["a", "zzz"])
        assert ids[1] == vocab.unk_id

    def test_bos_eos_insertion(self):
        vocab = Vocabulary.from_tokens(["a"])
        ids = vocab.encode(["a"], add_bos=True, add_eos=True)
        assert ids[0] == vocab.bos_id and ids[-1] == vocab.eos_id

    def test_add_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("tok")
        assert vocab.add("tok") == first

    def test_decode_to_text(self):
        vocab = Vocabulary.from_tokens(["ab", "c"])
        ids = vocab.encode(["ab", "c"])
        assert vocab.decode_to_text(ids) == "abc"

    def test_contains_and_len(self):
        vocab = Vocabulary.from_tokens(["x"])
        assert "x" in vocab
        assert len(vocab) == 5  # 4 specials + x


CORPUS = [
    "32 gmP1 -16 1/(gdsM0+sCdsM0+sCdsP1+gmP1)",
    "32 2.5mSP1 -16 1/(567uSM0+s0.7aFM0+s541aFP1+2.5mSP1)",
    "gmM1=2.50mS gdsM1=45.6uS CdsM1=12.3fF CgsM1=4.56fF IdM1=123uA",
    "gmM3=1.20mS gdsM3=95.6uS CdsM3=52.3fF CgsM3=14.6fF IdM3=23.4uA",
] * 25


@pytest.fixture(scope="module")
def trained_bpe():
    bpe = RestrictedBPE(num_merges=120)
    bpe.train(CORPUS)
    return bpe


class TestSegmentation:
    def test_concatenation_reproduces_input(self):
        text = "2.5mSP1 + s541aF -16 gain=20.1dB"
        assert "".join(s.text for s in segment_text(text)) == text

    def test_value_digits_protected(self):
        segments = segment_text("2.5mS")
        assert segments[0].text == "2.5" and segments[0].protected

    def test_device_index_digits_not_protected(self):
        segments = segment_text("gmP1")
        assert len(segments) == 1 and not segments[0].protected

    def test_digits_after_laplace_s_protected(self):
        segments = segment_text("s541aF")
        protected = [s.text for s in segments if s.protected]
        assert protected == ["541"]

    def test_negative_number_protected(self):
        segments = segment_text("x -16 y")
        protected = [s.text for s in segments if s.protected]
        assert protected == ["-16"]

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="gmds MPC0123456789.+-/()= ", max_size=60))
    def test_segmentation_lossless(self, text):
        assert "".join(s.text for s in segment_text(text)) == text


class TestRestrictedBPE:
    def test_roundtrip(self, trained_bpe):
        for line in CORPUS[:4]:
            assert trained_bpe.decode(trained_bpe.encode(line)) == line

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="gmds MPC0123456789.+-/()=", max_size=50))
    def test_roundtrip_property(self, trained_bpe, text):
        assert trained_bpe.decode(trained_bpe.encode(text)) == text

    def test_value_digits_stay_single_tokens(self, trained_bpe):
        tokens = trained_bpe.encode("2.5mSP1")
        assert tokens[:3] == ["2", ".", "5"]

    def test_merges_learned(self, trained_bpe):
        assert len(trained_bpe.merges) > 10
        tokens = trained_bpe.encode(CORPUS[2])
        assert any(len(t) > 3 for t in tokens)

    def test_compression_exceeds_one(self, trained_bpe):
        ratio = trained_bpe.compression_ratio(CORPUS)
        assert ratio > 1.5

    def test_no_merged_token_contains_value_digits(self, trained_bpe):
        for line in CORPUS:
            for token in trained_bpe.encode(line):
                if len(token) > 1:
                    # Any digit inside a merged token must be part of an
                    # identifier (preceded by an uppercase letter).
                    for i, ch in enumerate(token):
                        if ch.isdigit():
                            assert i > 0 and (token[i - 1].isupper() or token[i - 1].isdigit())

    def test_training_deterministic(self):
        a = RestrictedBPE(num_merges=50)
        b = RestrictedBPE(num_merges=50)
        a.train(CORPUS)
        b.train(CORPUS)
        assert a.merges == b.merges

    def test_encode_unseen_text_still_lossless(self, trained_bpe):
        text = "brand new ZZZ 9.99qq"
        assert trained_bpe.decode(trained_bpe.encode(text)) == text

    def test_vocabulary_build(self, trained_bpe):
        vocab = trained_bpe.build_vocabulary(CORPUS)
        tokens = trained_bpe.encode(CORPUS[0])
        ids = vocab.encode(tokens)
        assert vocab.unk_id not in ids

    def test_zero_merges_is_char_level(self):
        bpe = RestrictedBPE(num_merges=0)
        bpe.train(CORPUS)
        tokens = bpe.encode("gmM1")
        assert tokens == list("gmM1")

    def test_negative_merges_rejected(self):
        with pytest.raises(ValueError):
            RestrictedBPE(num_merges=-1)
