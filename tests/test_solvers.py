"""Tests of the unified solver API and the batched evaluation backend.

The parity classes are the contract of the API redesign: the bulk
``measure_many`` path (vectorized AC, amortized DC Newton) must produce
*bit-identical* measurements to the sequential ``measure`` path, with
per-candidate failure isolation; and every sizing method — copilot and
SPICE-in-the-loop baselines — must be dispatchable through
``repro.solvers`` and the service layers built on it.
"""

import numpy as np
import pytest

from repro import solvers
from repro.core import DesignSpec
from repro.core.bundle import SizingModel
from repro.datagen import SequenceBuilder, SequenceConfig
from repro.datagen.serialize import ParsedParams
from repro.devices import NMOS_65NM, PMOS_65NM
from repro.service import SizingEngine, SizingRequest
from repro.solvers import (
    PENALTY,
    BatchedBackend,
    EvalBackend,
    ScalarBackend,
    SearchObjective,
    SearchSolver,
    SolveResult,
)
from repro.spice import ConvergenceError
from repro.topologies import FiveTransistorOTA

from tests.conftest import (
    GOOD_WIDTHS,
    PoisonedFiveT,
    assert_measurements_identical,
    make_population,
)

#: Width value marking the candidate PoisonedFiveT refuses to converge on.
POISON_WIDTH = 3.333e-6


@pytest.fixture(scope="module")
def easy_spec(five_t_module):
    metrics = five_t_module.measure(GOOD_WIDTHS["5T-OTA"]).metrics
    return DesignSpec(metrics.gain_db * 0.9, metrics.f3db_hz * 0.5, metrics.ugf_hz * 0.5)


@pytest.fixture(scope="module")
def five_t_module():
    return FiveTransistorOTA()


# ----------------------------------------------------------------------
# Solver registry
# ----------------------------------------------------------------------
class TestSolverRegistry:
    def test_stock_solvers_registered(self):
        assert {"sa", "pso", "de", "copilot"} <= set(solvers.available_solvers())

    def test_register_create_unregister_round_trip(self, five_t_module, easy_spec):
        class NominalSolver(SearchSolver):
            """Evaluates only the nominal design — enough to round-trip."""

            name = "nominal"

            def solve(self, spec, budget=None, rng=None):
                import time

                objective = self._objective(spec)
                start = time.perf_counter()
                point = np.full(objective.space.dimension, 0.5)
                objective.evaluate_many(point[None, :])
                return self._finish(objective, start, iterations=1)

        solvers.register(NominalSolver)
        try:
            assert "nominal" in solvers.available_solvers()
            assert solvers.get("nominal") is NominalSolver
            solver = solvers.create("nominal", five_t_module)
            result = solver.solve(easy_spec)
            assert isinstance(result, SolveResult)
            assert result.solver == "nominal"
            assert result.spice_calls == 1
        finally:
            solvers.unregister("nominal")
        assert "nominal" not in solvers.available_solvers()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            solvers.register(solvers.ParticleSwarmSolver)

    def test_replace_allows_shadowing(self):
        solvers.register(solvers.ParticleSwarmSolver, replace=True)
        assert solvers.get("pso") is solvers.ParticleSwarmSolver

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="registered:"):
            solvers.get("annealing-but-wrong")

    def test_factory_without_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            solvers.register(lambda topology, **kwargs: None)


# ----------------------------------------------------------------------
# measure_many parity with the sequential measure path
# ----------------------------------------------------------------------
class TestMeasureManyParity:
    def _assert_identical(self, sequential, outcome):
        assert outcome.ok
        assert_measurements_identical(sequential, outcome.result)

    def test_bit_identical_to_sequential(self, five_t_module):
        population = make_population(five_t_module, 8)
        sequential = [five_t_module.measure(w) for w in population]
        outcomes = five_t_module.measure_many(population)
        assert len(outcomes) == len(population)
        for ref, outcome in zip(sequential, outcomes, strict=True):
            self._assert_identical(ref, outcome)

    def test_non_convergent_candidate_is_isolated(self):
        topology = PoisonedFiveT(POISON_WIDTH)
        population = make_population(topology, 4, seed=5)
        poisoned = dict(population[1])
        poisoned["M1"] = POISON_WIDTH
        batch = [population[0], poisoned, population[2], population[3]]

        with pytest.raises(ConvergenceError):
            topology.measure(poisoned)  # the sequential path gives up...

        outcomes = topology.measure_many(batch)
        assert not outcomes[1].ok  # ...the bulk path isolates the failure
        assert outcomes[1].error is not None
        for index in (0, 2, 3):
            self._assert_identical(topology.measure(batch[index]), outcomes[index])

    def test_unbuildable_candidate_is_isolated(self, five_t_module):
        population = make_population(five_t_module, 2)
        bad = dict(population[0])
        bad.pop("M5")  # missing group -> build-time KeyError
        outcomes = five_t_module.measure_many([bad, population[1]])
        assert not outcomes[0].ok and "M5" in outcomes[0].error
        self._assert_identical(five_t_module.measure(population[1]), outcomes[1])

    def test_empty_population(self, five_t_module):
        assert five_t_module.measure_many([]) == []

    def test_backends_agree(self, five_t_module):
        population = make_population(five_t_module, 3, seed=2)
        scalar = ScalarBackend().measure_many(five_t_module, population)
        batched = BatchedBackend().measure_many(five_t_module, population)
        for s, b in zip(scalar, batched, strict=True):
            assert s.ok and b.ok
            assert np.array_equal(
                s.result.metrics.as_array(), b.result.metrics.as_array(), equal_nan=True
            )


# ----------------------------------------------------------------------
# SearchObjective history bookkeeping
# ----------------------------------------------------------------------
class _FailingBackend(EvalBackend):
    """Every candidate fails to simulate — an all-penalized generation."""

    def measure_many(self, topology, widths_list):
        from repro.topologies import MeasureOutcome

        return [
            MeasureOutcome(widths=dict(widths), error="synthetic failure")
            for widths in widths_list
        ]


class TestSearchObjectiveHistory:
    def test_all_penalized_first_generation_records_finite_history(self, five_t_module, easy_spec):
        """Before the first simulatable candidate, ``best_value`` is inf;
        recorded history must clamp to PENALTY (finite, JSON-safe) instead
        of leaking Infinity into serialization and convergence plots."""
        import json

        objective = SearchObjective(five_t_module, easy_spec, backend=_FailingBackend())
        points = [np.full(objective.space.dimension, 0.5) for _ in range(4)]
        values = objective.evaluate_many(points)
        assert list(values) == [PENALTY] * 4
        assert objective.history == [PENALTY] * 4
        assert np.all(np.isfinite(objective.history))
        # JSON round trip: would raise/produce Infinity before the fix.
        assert json.loads(json.dumps(objective.history)) == objective.history

    def test_history_recovers_after_first_simulatable_candidate(self, five_t_module, easy_spec):
        objective = SearchObjective(five_t_module, easy_spec)
        failing = SearchObjective(five_t_module, easy_spec, backend=_FailingBackend())
        point = np.full(objective.space.dimension, 0.5)
        failing.history.extend([PENALTY, PENALTY])  # simulate a dead generation
        value = float(objective.evaluate_many(point[None, :])[0])
        failing.backend = objective.backend
        failing.evaluate_many(point[None, :])
        assert failing.history == [PENALTY, PENALTY, min(value, PENALTY)]
        # Best-so-far stays monotonically non-increasing and finite.
        history = np.array(failing.history, dtype=float)
        assert np.all(np.isfinite(history))
        assert np.all(np.diff(history) <= 0.0 + 1e-12)

    def test_simulatable_candidate_worse_than_penalty_recorded_truthfully(self, five_t_module):
        """A candidate that simulates but scores worse than PENALTY (e.g. a
        deeply negative gain) must be recorded as-is — never replaced by a
        clamped value no candidate ever achieved."""
        from types import SimpleNamespace

        from repro.spice import PerformanceMetrics
        from repro.topologies import MeasureOutcome

        class _TerribleBackend(EvalBackend):
            def measure_many(self, topology, widths_list):
                metrics = PerformanceMetrics(gain_db=-140.0, f3db_hz=1.0, ugf_hz=1.0)
                return [
                    MeasureOutcome(widths=dict(w), result=SimpleNamespace(metrics=metrics))
                    for w in widths_list
                ]

        spec = DesignSpec(10.0, 1e6, 1e8)
        objective = SearchObjective(five_t_module, spec, backend=_TerribleBackend())
        point = np.full(objective.space.dimension, 0.5)
        value = float(objective.evaluate_many(point[None, :])[0])
        assert value > PENALTY  # the scenario this test is about
        assert objective.history == [value]
        assert objective.best_value == value
        # ...and once a penalized candidate scores better (PENALTY < value),
        # the best *seen* is the penalty, monotone from there on.
        objective.backend = _FailingBackend()
        objective.evaluate_many(point[None, :])
        objective.backend = _TerribleBackend()
        objective.evaluate_many(point[None, :])
        assert objective.history == [value, PENALTY, PENALTY]

    def test_solver_history_json_safe_when_nothing_simulates(self, five_t_module, easy_spec):
        """A whole solver run over a dead backend yields a finite,
        JSON-round-trippable history."""
        import json

        solver = solvers.create("pso", five_t_module, backend=_FailingBackend())
        result = solver.solve(easy_spec, budget=24, rng=np.random.default_rng(1))
        assert not result.success
        assert len(result.history) == result.spice_calls
        assert result.history == [PENALTY] * result.spice_calls
        assert json.loads(json.dumps(result.history)) == result.history


# ----------------------------------------------------------------------
# Search solvers through the unified API
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["sa", "pso", "de"])
class TestSearchSolvers:
    def test_finds_easy_spec_with_unified_accounting(self, name, five_t_module, easy_spec):
        solver = solvers.get(name)(five_t_module)
        result = solver.solve(easy_spec, budget=250, rng=np.random.default_rng(5))
        assert result.solver == name
        assert result.success, f"{name} best={result.best_value}"
        assert result.best_widths is not None
        assert result.best_metrics is not None
        assert easy_spec.satisfied(result.best_metrics)
        assert 1 <= result.spice_calls <= 250

    def test_history_is_best_so_far_per_spice_call(self, name, five_t_module, easy_spec):
        solver = solvers.create(name, five_t_module)
        result = solver.solve(easy_spec, budget=100, rng=np.random.default_rng(7))
        assert len(result.history) == result.spice_calls
        history = np.array(result.history)
        finite = history[np.isfinite(history)]
        assert np.all(np.diff(finite) <= 1e-12)
        assert history[-1] == result.best_value

    def test_budget_is_a_hard_cap(self, name, five_t_module):
        hard = DesignSpec(gain_db=80.0, f3db_hz=1e10, ugf_hz=1e12)
        solver = solvers.create(name, five_t_module)
        result = solver.solve(hard, budget=30, rng=np.random.default_rng(6))
        assert not result.success
        assert result.spice_calls <= 30

    def test_scalar_backend_supported(self, name, five_t_module, easy_spec):
        solver = solvers.create(name, five_t_module, backend=ScalarBackend())
        result = solver.solve(easy_spec, budget=60, rng=np.random.default_rng(5))
        assert result.spice_calls <= 60


# ----------------------------------------------------------------------
# Seed determinism: same seed -> identical SolveResult, for every solver
# ----------------------------------------------------------------------
def _assert_solve_results_identical(first, second):
    """Everything but wall time must reproduce bit-identically."""
    assert first.solver == second.solver
    assert first.success == second.success
    assert first.spice_calls == second.spice_calls
    assert first.iterations == second.iterations
    assert first.best_value == second.best_value
    assert first.best_widths == second.best_widths
    assert first.history == second.history
    assert (first.best_metrics is None) == (second.best_metrics is None)
    if first.best_metrics is not None:
        assert np.array_equal(
            first.best_metrics.as_array(), second.best_metrics.as_array(), equal_nan=True
        )
        assert np.array_equal(
            first.best_metrics.tran_as_array(),
            second.best_metrics.tran_as_array(),
            equal_nan=True,
        )


@pytest.fixture(scope="module")
def tran_spec(five_t_module):
    """An achievable spec with transient targets derived from a measured
    step response (loose enough that random search can reach it)."""
    metrics = five_t_module.measure(
        GOOD_WIDTHS["5T-OTA"], analyses=("dc", "ac", "tran")
    ).metrics
    return DesignSpec(
        metrics.gain_db * 0.9,
        metrics.f3db_hz * 0.5,
        metrics.ugf_hz * 0.5,
        slew_v_per_s=metrics.slew_v_per_s * 0.5,
        settling_time_s=metrics.settling_time_s * 2.0,
        overshoot_frac=max(metrics.overshoot_frac * 2.0, 0.5),
    )


class TestSeedDeterminism:
    """Every registered solver must reproduce an identical ``SolveResult``
    (best design, history, accounting) from the same rng seed -- with and
    without transient specs in the objective."""

    @pytest.mark.parametrize("name", ["sa", "pso", "de"])
    @pytest.mark.parametrize("with_tran", [False, True])
    def test_search_solvers_reproduce(
        self, name, with_tran, five_t_module, easy_spec, tran_spec
    ):
        spec = tran_spec if with_tran else easy_spec
        results = []
        for _ in range(2):
            solver = solvers.create(name, five_t_module)
            results.append(solver.solve(spec, budget=24, rng=np.random.default_rng(42)))
        _assert_solve_results_identical(*results)
        if with_tran:
            # The objective really ran the transient leg: the best metrics
            # carry measured (finite) transient fields.
            best = results[0].best_metrics
            if best is not None:
                assert best.has_tran

    @pytest.mark.parametrize("with_tran", [False, True])
    def test_copilot_reproduces(
        self, with_tran, five_t_module, oneshot_model, achievable_spec, tran_spec
    ):
        spec = tran_spec if with_tran else achievable_spec
        results = []
        for _ in range(2):
            solver = solvers.create("copilot", five_t_module, model=oneshot_model)
            results.append(solver.solve(spec, budget=2, rng=np.random.default_rng(42)))
        _assert_solve_results_identical(*results)


# ----------------------------------------------------------------------
# Copilot through the unified API (perfect-prediction stand-in model)
# ----------------------------------------------------------------------
class _OneShotModel(SizingModel):
    """Always predicts the device parameters of one known-good design."""

    def __init__(self, topology, values, luts):
        builder = SequenceBuilder(topology, SequenceConfig())
        super().__init__(
            transformer=None,
            bpe=None,
            vocab=None,
            sequence_config=builder.config,
            builders={topology.name: builder},
            luts=luts,
        )
        self._values = values

    def predict_params(self, topology_name, spec, max_len=None):
        values = {group: dict(params) for group, params in self._values.items()}
        return ParsedParams(values=values, complete=True), "<oneshot>"

    def predict_params_many(self, specs_by_topology, max_len=None):
        return {
            name: [self.predict_params(name, spec, max_len) for spec in specs]
            for name, specs in specs_by_topology.items()
        }


@pytest.fixture(scope="module")
def oneshot_model(five_t_module, nmos_lut, pmos_lut):
    measurement = five_t_module.measure(GOOD_WIDTHS["5T-OTA"])
    values = {
        group.name: measurement.device_params[group.name]
        for group in five_t_module.groups
    }
    luts = {NMOS_65NM.name: nmos_lut, PMOS_65NM.name: pmos_lut}
    return _OneShotModel(five_t_module, values, luts)


@pytest.fixture(scope="module")
def achievable_spec(five_t_module):
    """Targets the one-shot model's own design reaches after LUT round-trip."""
    metrics = five_t_module.measure(GOOD_WIDTHS["5T-OTA"]).metrics
    return DesignSpec(metrics.gain_db * 0.98, metrics.f3db_hz * 0.9, metrics.ugf_hz * 0.9)


class TestCopilotSolver:
    def test_unified_call_and_accounting(self, five_t_module, oneshot_model, achievable_spec):
        solver = solvers.get("copilot")(five_t_module, model=oneshot_model)
        result = solver.solve(achievable_spec)
        assert result.solver == "copilot"
        assert result.success
        assert result.spice_calls == 1
        assert result.iterations == 1
        assert result.history == [0.0]
        assert result.best_value == 0.0
        assert achievable_spec.satisfied(result.best_metrics)

    def test_budget_caps_iterations(self, five_t_module, oneshot_model):
        impossible = DesignSpec(gain_db=90.0, f3db_hz=1e10, ugf_hz=1e12)
        solver = solvers.create("copilot", five_t_module, model=oneshot_model)
        result = solver.solve(impossible, budget=3)
        assert not result.success
        assert result.iterations == 3
        assert result.spice_calls <= 3
        # Best-iterate reporting survives the conversion.
        assert result.best_metrics is not None
        assert np.isfinite(result.best_value)
        assert len(result.history) == result.spice_calls

    def test_requires_model_or_engine(self, five_t_module):
        with pytest.raises(ValueError, match="model"):
            solvers.create("copilot", five_t_module)


# ----------------------------------------------------------------------
# Engine dispatch by request method
# ----------------------------------------------------------------------
class TestEngineMethodDispatch:
    def _engine(self, oneshot_model, five_t_module, **kwargs):
        engine = SizingEngine(oneshot_model, **kwargs)
        engine.adopt_topology(five_t_module)
        return engine

    def _request(self, spec, **kwargs):
        return SizingRequest(topology="5T-OTA", spec=spec, **kwargs)

    def test_mixed_methods_in_one_batch(self, five_t_module, oneshot_model, achievable_spec):
        engine = self._engine(oneshot_model, five_t_module, cache_size=0)
        requests = [
            self._request(achievable_spec, id="cop"),
            self._request(achievable_spec, id="swarm", method="pso", budget=60),
            self._request(achievable_spec, id="anneal", method="sa", budget=60),
        ]
        responses = engine.size_batch(requests)
        assert [r.request_id for r in responses] == ["cop", "swarm", "anneal"]
        assert [r.method for r in responses] == ["copilot", "pso", "sa"]
        for response in responses:
            assert response.error is None
            assert response.success
            assert achievable_spec.satisfied(response.metrics)
        assert responses[1].spice_simulations <= 60
        assert responses[2].spice_simulations <= 60

    def test_solver_responses_reproducible_per_request_id(
        self, five_t_module, oneshot_model, achievable_spec
    ):
        engine = self._engine(oneshot_model, five_t_module, cache_size=0)
        first = engine.size_batch([self._request(achievable_spec, id="r", method="de", budget=60)])
        second = engine.size_batch([self._request(achievable_spec, id="r", method="de", budget=60)])
        assert first[0].widths == second[0].widths
        assert first[0].spice_simulations == second[0].spice_simulations

    def test_solver_requests_bypass_cache(self, five_t_module, oneshot_model, achievable_spec):
        engine = self._engine(oneshot_model, five_t_module, cache_size=16)
        request = self._request(achievable_spec, method="sa", budget=40)
        engine.size(request)
        engine.size(self._request(achievable_spec, method="sa", budget=40, id="again"))
        assert engine.stats.cache_hits == 0
        assert engine.stats.solver_requests == 2

    def test_unknown_method_yields_error_response(
        self, five_t_module, oneshot_model, achievable_spec
    ):
        engine = self._engine(oneshot_model, five_t_module, cache_size=0)
        response = engine.size(self._request(achievable_spec, method="gradient-descent"))
        assert not response.success
        assert "gradient-descent" in response.error

    def test_json_round_trip_with_method_and_budget(self, achievable_spec):
        request = self._request(achievable_spec, method="pso", budget=123)
        restored = SizingRequest.from_json_line(request.to_json_line())
        assert restored == request
        assert restored.method == "pso"
        assert restored.budget == 123


# ----------------------------------------------------------------------
# CLI `size --method` dispatch for every registered solver
# ----------------------------------------------------------------------
_MICRO_CONFIG_KWARGS = dict(
    designs_per_topology=(("5T-OTA", 18),),
    epochs=1,
    d_model=32,
    n_heads=4,
    d_ff=48,
    dropout=0.0,
    num_merges=120,
    encoder_max_paths=1,
    learning_rate=1e-3,
    batch_size=8,
    dtype="float32",
    seed=3,
)


@pytest.fixture(scope="module")
def micro_bundle(tmp_path_factory):
    """A real (minutes-of-nothing-scale) trained bundle saved to disk."""
    from repro.core import PipelineConfig, train_sizing_model

    artifacts = train_sizing_model(PipelineConfig(**_MICRO_CONFIG_KWARGS))
    bundle = tmp_path_factory.mktemp("bundle") / "micro"
    artifacts.model.save(bundle)
    return bundle


class TestCLIMethodDispatch:
    #: SPICE budgets keeping each method's run small in CI.
    BUDGETS = {"sa": 40, "pso": 40, "de": 40, "copilot": 2}

    def test_solvers_subcommand_lists_registry(self, capsys):
        from repro.service.cli import main

        assert main(["solvers"]) == 0
        out = capsys.readouterr().out.split()
        assert {"sa", "pso", "de", "copilot"} <= set(out)

    @pytest.mark.parametrize("method", ["sa", "pso", "de", "copilot"])
    def test_size_dispatches_every_registered_solver(
        self, method, micro_bundle, easy_spec, tmp_path
    ):
        from repro.service.cli import main
        from repro.service.requests import SizingResponse

        request = SizingRequest(topology="5T-OTA", spec=easy_spec, id=f"cli-{method}")
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text(request.to_json_line() + "\n")
        responses_file = tmp_path / "responses.jsonl"
        budget = self.BUDGETS[method]
        exit_code = main([
            "size", "--bundle", str(micro_bundle),
            "--method", method, "--budget", str(budget),
            "-i", str(requests_file), "-o", str(responses_file),
        ])
        assert exit_code == 0
        response = SizingResponse.from_json_line(responses_file.read_text().splitlines()[0])
        assert response.request_id == f"cli-{method}"
        assert response.method == method
        assert response.error is None
        assert response.spice_simulations <= budget
        if method != "copilot":  # the micro model may miss; the search won't
            assert response.success

    def test_unknown_method_flag_exits_2(self, micro_bundle, tmp_path):
        from repro.service.cli import main

        exit_code = main([
            "size", "--bundle", str(micro_bundle), "--method", "bogus",
            "-i", str(tmp_path / "none.jsonl"), "-o", "-",
        ])
        assert exit_code == 2
