"""Tests of the netlist container and the DC sweep utilities."""

import numpy as np
import pytest

from repro.devices import NMOS_65NM, PMOS_65NM
from repro.spice import Circuit, characterize_device, dc_transfer_sweep, icmr_sweep
from repro.spice.netlist import GROUND


class TestCircuitContainer:
    def test_node_collection_order_and_ground(self):
        circuit = Circuit("c")
        circuit.add_vsource("V1", "a", "0", 1.0)
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_resistor("R2", "b", "gnd", 1e3)
        assert circuit.nodes() == ["a", "b"]
        assert GROUND not in circuit.nodes()

    def test_duplicate_names_rejected(self):
        circuit = Circuit("c")
        circuit.add_resistor("R1", "a", "b", 1e3)
        with pytest.raises(ValueError):
            circuit.add_capacitor("R1", "a", "b", 1e-12)

    def test_invalid_element_values_rejected(self):
        circuit = Circuit("c")
        with pytest.raises(ValueError):
            circuit.add_resistor("R", "a", "b", -1.0)
        with pytest.raises(ValueError):
            circuit.add_capacitor("C", "a", "b", -1e-12)

    def test_lookup_helpers(self):
        circuit = Circuit("c")
        circuit.add_vsource("V1", "a", "0", 1.0)
        circuit.add_mosfet("M1", "a", "a", "0", NMOS_65NM, 1e-6, 180e-9)
        assert circuit.vsource("V1").dc == 1.0
        assert circuit.mosfet("M1").width == 1e-6
        with pytest.raises(KeyError):
            circuit.mosfet("MX")
        with pytest.raises(KeyError):
            circuit.vsource("VX")

    def test_set_widths(self):
        circuit = Circuit("c")
        circuit.add_mosfet("M1", "a", "b", "0", NMOS_65NM, 1e-6, 180e-9)
        circuit.set_widths({"M1": 2e-6})
        assert circuit.mosfet("M1").width == 2e-6
        with pytest.raises(ValueError):
            circuit.set_widths({"M1": -2e-6})

    def test_copy_is_independent(self):
        circuit = Circuit("c")
        circuit.add_vsource("V1", "a", "0", 1.0)
        circuit.add_mosfet("M1", "a", "a", "0", NMOS_65NM, 1e-6, 180e-9)
        dup = circuit.copy()
        dup.vsource("V1").dc = 2.0
        dup.mosfet("M1").width = 9e-6
        assert circuit.vsource("V1").dc == 1.0
        assert circuit.mosfet("M1").width == 1e-6


class TestCharacterization:
    def test_testbench_matches_direct_model(self):
        grid = np.arange(0.0, 1.21, 0.3)
        via_testbench = characterize_device(
            NMOS_65NM, vgs_grid=grid, vds_grid=grid, use_testbench=True
        )
        direct = characterize_device(
            NMOS_65NM, vgs_grid=grid, vds_grid=grid, use_testbench=False
        )
        for name in via_testbench.OUTPUTS:
            np.testing.assert_allclose(
                via_testbench.tables[name], direct.tables[name], rtol=1e-6, atol=1e-18
            )

    def test_pmos_characterization_positive(self):
        grid = np.arange(0.0, 1.21, 0.4)
        result = characterize_device(PMOS_65NM, vgs_grid=grid, vds_grid=grid, use_testbench=True)
        assert np.all(result.tables["id"] >= -1e-18)
        assert np.all(result.tables["gm"] >= -1e-18)

    def test_per_unit_width_normalization(self):
        grid = np.arange(0.0, 1.21, 0.6)
        narrow = characterize_device(NMOS_65NM, reference_width=700e-9, vgs_grid=grid, vds_grid=grid, use_testbench=False)
        wide = characterize_device(NMOS_65NM, reference_width=7e-6, vgs_grid=grid, vds_grid=grid, use_testbench=False)
        for name in narrow.OUTPUTS:
            np.testing.assert_allclose(narrow.tables[name], wide.tables[name], rtol=1e-10)


class TestSweeps:
    def test_icmr_sweep_on_5t(self, five_t):
        widths = {"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6}
        circuit = five_t.build(widths)
        result = icmr_sweep(circuit, ["VINP", "VINN"], np.linspace(0.3, 1.1, 9))
        assert result.converged.any()
        assert result.all_saturated.any()
        assert result.contains(0.6)
        # Extremes of the common-mode range must fail.
        assert not result.all_saturated[0] or not result.all_saturated[-1]

    def test_icmr_range_endpoints(self, five_t):
        widths = {"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6}
        circuit = five_t.build(widths)
        result = icmr_sweep(circuit, ["VINP", "VINN"], np.linspace(0.4, 0.9, 6))
        assert result.low - 1e-9 <= 0.6 <= result.high + 1e-9

    def test_dc_transfer_sweep(self):
        circuit = Circuit("div")
        circuit.add_vsource("VIN", "in", "0", 0.0)
        circuit.add_resistor("R1", "in", "mid", 1e3)
        circuit.add_resistor("R2", "mid", "0", 1e3)
        values, observed = dc_transfer_sweep(circuit, "VIN", np.linspace(0, 1, 5), "mid")
        np.testing.assert_allclose(observed, values / 2.0, rtol=1e-9)
