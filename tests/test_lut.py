"""Tests of the precomputed LUT and the Algorithm 1 width estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import EKVModel, NMOS_65NM, PMOS_65NM
from repro.lut import DeviceParams, LookupTable, build_lut, estimate_width

L = 180e-9


class TestLookupTable:
    def test_grid_matches_paper(self, nmos_lut):
        # 0 to 1.2 V in 60 mV steps -> 21 points per axis.
        assert len(nmos_lut.vgs_grid) == 21
        assert len(nmos_lut.vds_grid) == 21
        assert nmos_lut.vgs_grid[1] - nmos_lut.vgs_grid[0] == pytest.approx(0.06)
        assert nmos_lut.reference_width == pytest.approx(700e-9)

    def test_on_grid_queries_exact(self, nmos_lut):
        model = EKVModel(NMOS_65NM)
        vgs, vds = 0.6, 0.6
        per_width = nmos_lut.query("gm", vgs, vds)
        direct = model.transconductance(vgs, vds, 700e-9, L) / 700e-9
        assert float(per_width) == pytest.approx(float(direct), rel=1e-9)

    def test_spline_accuracy_off_grid(self, nmos_lut):
        """Cubic interpolation must track the model between grid points."""
        model = EKVModel(NMOS_65NM)
        rng = np.random.default_rng(0)
        for _ in range(30):
            vgs = float(rng.uniform(0.2, 1.1))
            vds = float(rng.uniform(0.1, 1.1))
            interpolated = float(nmos_lut.query("id", vgs, vds))
            direct = float(model.drain_current(vgs, vds, 700e-9, L)) / 700e-9
            assert interpolated == pytest.approx(direct, rel=0.02, abs=1e-9)

    def test_query_all_keys(self, nmos_lut):
        values = nmos_lut.query_all(0.5, 0.5)
        assert set(values) == {"id", "gm", "gds", "cds", "cgs"}

    def test_unknown_output_rejected(self, nmos_lut):
        with pytest.raises(KeyError):
            nmos_lut.query("bogus", 0.5, 0.5)

    def test_gm_over_id_monotone_decreasing_in_vgs(self, nmos_lut):
        # gm/Id is flat (~1/(n*Ut)) deep in weak inversion, where spline
        # wiggles at the 1e-4 level are expected; test from 0.3 V up where
        # the ratio genuinely falls.
        vgs = np.linspace(0.3, 1.1, 30)
        ratios = nmos_lut.gm_over_id(vgs, 0.6)
        assert np.all(np.diff(ratios) < 0)

    def test_find_vgs_inverts_gm_id(self, nmos_lut):
        for target in (5.0, 15.0, 25.0):
            vgs = nmos_lut.find_vgs_for_gm_id(target, 0.6)
            assert float(nmos_lut.gm_over_id(vgs, 0.6)) == pytest.approx(target, rel=1e-3)

    def test_find_vgs_clamps_out_of_range(self, nmos_lut):
        low, high = nmos_lut.gm_id_range(0.6)
        assert nmos_lut.find_vgs_for_gm_id(high * 2, 0.6) == pytest.approx(nmos_lut.vgs_grid[1])
        assert nmos_lut.find_vgs_for_gm_id(low / 2, 0.6) == pytest.approx(nmos_lut.vgs_grid[-1])

    def test_invalid_target_rejected(self, nmos_lut):
        with pytest.raises(ValueError):
            nmos_lut.find_vgs_for_gm_id(-1.0, 0.6)

    def test_save_load_roundtrip(self, nmos_lut, tmp_path):
        path = tmp_path / "lut.npz"
        nmos_lut.save(path)
        restored = LookupTable.load(path)
        assert restored.tech.name == nmos_lut.tech.name
        np.testing.assert_allclose(restored.tables["gm"], nmos_lut.tables["gm"])
        assert float(restored.query("gm", 0.55, 0.63)) == pytest.approx(
            float(nmos_lut.query("gm", 0.55, 0.63))
        )

    def test_testbench_lut_matches_direct(self):
        """The literal Fig. 5 flow (MNA testbench sweep) must agree with
        direct model evaluation."""
        direct = build_lut(NMOS_65NM, step=0.3, use_testbench=False)
        bench = build_lut(NMOS_65NM, step=0.3, use_testbench=True)
        np.testing.assert_allclose(bench.tables["id"], direct.tables["id"], rtol=1e-6, atol=1e-18)


def params_from_model(tech, vgs, vds, width):
    model = EKVModel(tech)
    values = model.evaluate_all(vgs, vds, width, L)
    return DeviceParams(
        gm=float(values["gm"]),
        gds=float(values["gds"]),
        cds=float(values["cds"]),
        cgs=float(values["cgs"]),
        id=float(values["id"]),
    )


class TestWidthEstimator:
    def test_roundtrip_simple(self, nmos_lut):
        params = params_from_model(NMOS_65NM, 0.5, 0.6, 10e-6)
        estimate = estimate_width(params, nmos_lut)
        assert estimate.width == pytest.approx(10e-6, rel=0.02)
        assert estimate.converged

    @settings(max_examples=25, deadline=None)
    @given(
        width=st.floats(min_value=0.7e-6, max_value=50e-6),
        vgs=st.floats(min_value=0.35, max_value=0.85),
        vds=st.floats(min_value=0.2, max_value=1.0),
    )
    def test_roundtrip_property(self, nmos_lut, width, vgs, vds):
        params = params_from_model(NMOS_65NM, vgs, vds, width)
        estimate = estimate_width(params, nmos_lut)
        assert estimate.width == pytest.approx(width, rel=0.05)

    def test_pmos_roundtrip(self, pmos_lut):
        params = params_from_model(PMOS_65NM, 0.6, 0.55, 2e-6)
        estimate = estimate_width(params, pmos_lut)
        assert estimate.width == pytest.approx(2e-6, rel=0.02)

    def test_recovers_bias_point(self, nmos_lut):
        vgs, vds = 0.45, 0.72
        params = params_from_model(NMOS_65NM, vgs, vds, 8e-6)
        estimate = estimate_width(params, nmos_lut)
        assert estimate.vgs == pytest.approx(vgs, abs=0.02)
        assert estimate.vds == pytest.approx(vds, abs=0.05)

    def test_candidates_agree_at_solution(self, nmos_lut):
        params = params_from_model(NMOS_65NM, 0.5, 0.6, 10e-6)
        estimate = estimate_width(params, nmos_lut)
        assert estimate.spread() < 0.05

    def test_paper_update_rule_agrees_with_jump(self, nmos_lut):
        params = params_from_model(NMOS_65NM, 0.55, 0.5, 5e-6)
        jump = estimate_width(params, nmos_lut, update="jump")
        paper = estimate_width(params, nmos_lut, update="paper", max_iterations=300)
        assert jump.width == pytest.approx(paper.width, rel=0.02)

    def test_unknown_update_rejected(self, nmos_lut):
        params = params_from_model(NMOS_65NM, 0.5, 0.5, 5e-6)
        with pytest.raises(ValueError):
            estimate_width(params, nmos_lut, update="bogus")

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DeviceParams(gm=-1.0, gds=1e-6, cds=1e-15, cgs=1e-15, id=1e-5)
        with pytest.raises(ValueError):
            DeviceParams(gm=1e-3, gds=1e-6, cds=1e-15, cgs=1e-15, id=float("nan"))

    def test_noisy_params_still_close(self, nmos_lut):
        """~10% parameter noise (transformer-scale error) must yield a
        width in the right neighbourhood -- the property the copilot loop
        relies on."""
        rng = np.random.default_rng(3)
        params = params_from_model(NMOS_65NM, 0.5, 0.6, 10e-6)
        noisy = DeviceParams(
            gm=params.gm * 1.1,
            gds=params.gds * 0.92,
            cds=params.cds * 1.05,
            cgs=params.cgs * 0.95,
            id=params.id * 1.08,
        )
        estimate = estimate_width(noisy, nmos_lut)
        assert estimate.width == pytest.approx(10e-6, rel=0.35)
