"""Tests of the SPICE-in-the-loop baselines (SA / PSO / DE)."""

import numpy as np
import pytest

from repro.baselines import (
    Objective,
    SearchSpace,
    differential_evolution,
    particle_swarm,
    simulated_annealing,
)
from repro.core import DesignSpec

from tests.conftest import GOOD_WIDTHS


@pytest.fixture(scope="module")
def easy_spec(five_t_module):
    """A specification a known design comfortably exceeds."""
    metrics = five_t_module.measure(GOOD_WIDTHS["5T-OTA"]).metrics
    return DesignSpec(metrics.gain_db * 0.9, metrics.f3db_hz * 0.5, metrics.ugf_hz * 0.5)


@pytest.fixture(scope="module")
def five_t_module():
    from repro.topologies import FiveTransistorOTA

    return FiveTransistorOTA()


class TestSearchSpace:
    def test_decode_bounds(self, five_t_module):
        space = SearchSpace(five_t_module)
        lows = space.decode(np.zeros(space.dimension))
        highs = space.decode(np.ones(space.dimension))
        for name in space.names:
            low, high = five_t_module.group(name).width_bounds
            assert lows[name] == pytest.approx(low)
            assert highs[name] == pytest.approx(high)

    def test_decode_clips(self, five_t_module):
        space = SearchSpace(five_t_module)
        widths = space.decode(np.full(space.dimension, 2.0))
        for name, width in widths.items():
            assert width == pytest.approx(five_t_module.group(name).width_bounds[1])


class TestObjective:
    def test_counts_spice_calls(self, five_t_module, easy_spec):
        objective = Objective(five_t_module, easy_spec)
        space = objective.space
        rng = np.random.default_rng(0)
        for _ in range(4):
            objective(space.random_point(rng))
        assert objective.spice_calls == 4

    def test_zero_cost_when_satisfied(self, five_t_module, easy_spec):
        objective = Objective(five_t_module, easy_spec)
        # Encode the known-good design into the normalized space.
        space = objective.space
        point = np.zeros(space.dimension)
        for i, name in enumerate(space.names):
            low, high = five_t_module.group(name).width_bounds
            width = GOOD_WIDTHS["5T-OTA"][name]
            point[i] = (np.log(width) - np.log(low)) / (np.log(high) - np.log(low))
        value = objective(point)
        assert value == pytest.approx(0.0)
        assert objective.satisfied


@pytest.mark.parametrize(
    "algorithm",
    [simulated_annealing, particle_swarm, differential_evolution],
    ids=["SA", "PSO", "DE"],
)
class TestBaselineAlgorithms:
    def test_finds_easy_spec(self, algorithm, five_t_module, easy_spec):
        rng = np.random.default_rng(5)
        result = algorithm(five_t_module, easy_spec, rng, max_evaluations=250)
        assert result.success, f"{result.algorithm} best={result.best_value}"
        assert result.best_widths is not None
        assert result.spice_calls <= 250

    def test_respects_evaluation_budget(self, algorithm, five_t_module):
        hard = DesignSpec(gain_db=80.0, f3db_hz=1e10, ugf_hz=1e12)
        rng = np.random.default_rng(6)
        result = algorithm(five_t_module, hard, rng, max_evaluations=30)
        assert not result.success
        assert result.spice_calls <= 30 + 12  # one trailing sweep/population

    def test_history_monotone_nonincreasing(self, algorithm, five_t_module, easy_spec):
        rng = np.random.default_rng(7)
        result = algorithm(five_t_module, easy_spec, rng, max_evaluations=100)
        history = np.array(result.history)
        assert np.all(np.diff(history) <= 1e-12)

    def test_spice_call_accounting(self, algorithm, five_t_module, easy_spec):
        """Every optimizer evaluation must be counted as a SPICE call."""
        rng = np.random.default_rng(8)
        result = algorithm(five_t_module, easy_spec, rng, max_evaluations=250)
        assert result.spice_calls >= 1
        assert len(result.history) >= 1
