"""Tests of the SizingModel bundle persistence and the training pipeline."""

import numpy as np
import pytest

from repro.core import PipelineConfig, SizingModel, train_sizing_model
from repro.core.pipeline import BENCHMARK_CONFIG


TINY = PipelineConfig(
    designs_per_topology=(("5T-OTA", 25),),
    epochs=2,
    d_model=32,
    n_heads=4,
    d_ff=48,
    dropout=0.0,
    num_merges=150,
    encoder_max_paths=1,
    learning_rate=1e-3,
    batch_size=8,
    dtype="float32",
    seed=5,
)


@pytest.fixture(scope="module")
def tiny_artifacts(tmp_path_factory):
    cache = tmp_path_factory.mktemp("pipeline_cache")
    return train_sizing_model(TINY, cache_dir=cache), cache


class TestPipeline:
    def test_produces_model_and_splits(self, tiny_artifacts):
        artifacts, _ = tiny_artifacts
        assert len(artifacts.datasets["5T-OTA"]) == 25
        assert len(artifacts.train_records["5T-OTA"]) == 20
        assert len(artifacts.val_records["5T-OTA"]) == 5
        assert artifacts.training_seconds > 0
        assert len(artifacts.history_train_loss) == TINY.epochs

    def test_loss_decreases(self, tiny_artifacts):
        artifacts, _ = tiny_artifacts
        assert artifacts.history_train_loss[-1] < artifacts.history_train_loss[0]

    def test_cache_roundtrip(self, tiny_artifacts):
        artifacts, cache = tiny_artifacts
        reloaded = train_sizing_model(TINY, cache_dir=cache)
        assert len(reloaded.datasets["5T-OTA"]) == 25
        assert reloaded.training_seconds == pytest.approx(artifacts.training_seconds)
        # Same prediction from the reloaded transformer.
        from repro.core import DesignSpec

        record = artifacts.val_records["5T-OTA"][0]
        spec = DesignSpec(record.gain_db, record.f3db_hz, record.ugf_hz)
        _, text_a = artifacts.model.predict_params("5T-OTA", spec)
        _, text_b = reloaded.model.predict_params("5T-OTA", spec)
        assert text_a == text_b

    def test_cache_key_stable_and_distinct(self):
        assert TINY.cache_key() == TINY.cache_key()
        other = PipelineConfig(epochs=TINY.epochs + 1)
        assert TINY.cache_key() != other.cache_key()
        assert BENCHMARK_CONFIG.cache_key() != TINY.cache_key()

    def test_float32_model(self, tiny_artifacts):
        artifacts, _ = tiny_artifacts
        params = dict(artifacts.model.transformer.named_parameters())
        assert all(p.dtype == np.float32 for p in params.values())


class TestBundlePersistence:
    def test_save_load_bundle(self, tiny_artifacts, tmp_path):
        artifacts, _ = tiny_artifacts
        path = tmp_path / "bundle"
        artifacts.model.save(path)
        restored = SizingModel.load(path)
        assert set(restored.luts) == set(artifacts.model.luts)
        assert restored.bpe.merges == artifacts.model.bpe.merges
        assert restored.vocab.id_to_token == artifacts.model.vocab.id_to_token
        from repro.core import DesignSpec

        record = artifacts.val_records["5T-OTA"][0]
        spec = DesignSpec(record.gain_db, record.f3db_hz, record.ugf_hz)
        _, text_a = artifacts.model.predict_params("5T-OTA", spec)
        _, text_b = restored.predict_params("5T-OTA", spec)
        assert text_a == text_b

    def test_lut_lookup_by_group(self, tiny_artifacts):
        artifacts, _ = tiny_artifacts
        from repro.topologies import topology_by_name

        topology = topology_by_name("5T-OTA")
        lut_p = artifacts.model.lut_for(topology, "M1")
        lut_n = artifacts.model.lut_for(topology, "M3")
        assert lut_p.tech.polarity == -1
        assert lut_n.tech.polarity == 1


FULL_PATHS_TINY = PipelineConfig(
    designs_per_topology=(("5T-OTA", 20),),
    epochs=2,
    d_model=32,
    n_heads=4,
    d_ff=48,
    dropout=0.0,
    num_merges=150,
    encoder_max_paths=1,
    decoder_format="full_paths",
    learning_rate=1e-3,
    batch_size=8,
    dtype="float32",
    seed=9,
)


class TestFullPathsPipeline:
    """The paper-faithful decoder format must train end to end."""

    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("fp_cache")
        return train_sizing_model(FULL_PATHS_TINY, cache_dir=cache)

    def test_decoder_targets_are_paths(self, artifacts):
        builder = artifacts.model.builder("5T-OTA")
        record = artifacts.train_records["5T-OTA"][0]
        text = builder.decoder_text(record.device_params)
        assert "Iout" in text or "Vout" in text  # path vertices present
        assert "|" in text  # completeness block

    def test_ground_truth_roundtrip_through_format(self, artifacts):
        builder = artifacts.model.builder("5T-OTA")
        record = artifacts.train_records["5T-OTA"][0]
        parsed = builder.parse_decoder_text(builder.decoder_text(record.device_params))
        assert parsed.complete
        for group, params in record.device_params.items():
            for key, value in params.items():
                assert parsed.values[group][key] == pytest.approx(value, rel=6e-3)

    def test_training_ran(self, artifacts):
        assert len(artifacts.history_train_loss) == FULL_PATHS_TINY.epochs
        assert artifacts.history_train_loss[-1] < artifacts.history_train_loss[0]

    def test_inference_produces_text(self, artifacts):
        from repro.core import DesignSpec

        record = artifacts.val_records["5T-OTA"][0]
        spec = DesignSpec(record.gain_db, record.f3db_hz, record.ugf_hz)
        _, text = artifacts.model.predict_params("5T-OTA", spec)
        assert isinstance(text, str) and len(text) > 0
