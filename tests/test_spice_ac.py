"""Tests of the small-signal AC analysis and metric extraction."""

import numpy as np
import pytest

from repro.devices import NMOS_65NM
from repro.spice import (
    Circuit,
    PerformanceMetrics,
    crossing_frequency,
    default_frequency_grid,
    extract_metrics,
    run_ac,
    solve_dc,
)

L = 180e-9


def rc_lowpass(r=1e3, c=1e-9):
    circuit = Circuit("rc")
    circuit.add_vsource("VIN", "in", "0", 0.0, ac=1.0)
    circuit.add_resistor("R", "in", "out", r)
    circuit.add_capacitor("C", "out", "0", c)
    return circuit


class TestACAnalysis:
    def test_rc_pole_matches_analytic(self):
        r, c = 1e3, 1e-9
        circuit = rc_lowpass(r, c)
        dc = solve_dc(circuit)
        freqs = np.logspace(3, 8, 101)
        result = run_ac(dc, freqs)
        h = result.transfer("out")
        expected = 1.0 / (1.0 + 2j * np.pi * freqs * r * c)
        np.testing.assert_allclose(h, expected, rtol=1e-10)

    def test_supply_is_small_signal_ground(self):
        circuit = Circuit("supply")
        circuit.add_vsource("VDD", "vdd", "0", 1.2, ac=0.0)
        circuit.add_vsource("VIN", "in", "0", 0.0, ac=1.0)
        circuit.add_resistor("R1", "in", "x", 1e3)
        circuit.add_resistor("R2", "x", "vdd", 1e3)
        dc = solve_dc(circuit)
        result = run_ac(dc, np.array([1e3]))
        assert abs(result.transfer("vdd")[0]) == pytest.approx(0.0, abs=1e-12)
        assert abs(result.transfer("x")[0]) == pytest.approx(0.5, rel=1e-9)

    def test_cs_amplifier_low_frequency_gain(self):
        circuit = Circuit("cs")
        circuit.add_vsource("VDD", "vdd", "0", 1.2)
        circuit.add_vsource("VIN", "g", "0", 0.55, ac=1.0)
        circuit.add_resistor("RL", "vdd", "d", 20e3)
        circuit.add_mosfet("M", "d", "g", "0", NMOS_65NM, 5e-6, L)
        dc = solve_dc(circuit)
        small = dc.op("M").small_signal
        expected = -small.gm / (1.0 / 20e3 + small.gds)
        result = run_ac(dc, np.array([10.0]))
        assert result.transfer("d")[0].real == pytest.approx(expected, rel=1e-6)

    def test_magnitude_db(self):
        circuit = rc_lowpass()
        dc = solve_dc(circuit)
        result = run_ac(dc, np.array([1.0]))
        assert result.magnitude_db("out")[0] == pytest.approx(0.0, abs=1e-6)

    def test_transfer_uses_index_map(self):
        """transfer() resolves nodes through the precomputed name map."""
        circuit = rc_lowpass()
        dc = solve_dc(circuit)
        result = run_ac(dc, np.array([1e3, 1e6]))
        for i, name in enumerate(result.node_names):
            np.testing.assert_array_equal(result.transfer(name), result.phasors[:, i])
        assert not result.transfer("0").any()  # ground is identically zero
        with pytest.raises(ValueError, match="not a node"):
            result.transfer("missing-node")

    def test_run_ac_many_bitwise_matches_run_ac(self):
        from repro.spice import run_ac_many

        freqs = np.logspace(2, 9, 40)
        solutions = [solve_dc(rc_lowpass(r=r)) for r in (5e2, 1e3, 2e3, 8e3)]
        stacked = run_ac_many(solutions, freqs)
        for dc, result in zip(solutions, stacked, strict=True):
            reference = run_ac(dc, freqs)
            assert result.node_names == reference.node_names
            np.testing.assert_array_equal(result.phasors, reference.phasors)

    def test_default_grid_spans_requested_range(self):
        grid = default_frequency_grid(1.0, 1e9, 10)
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(1e9)
        assert np.all(np.diff(np.log10(grid)) > 0)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            default_frequency_grid(10.0, 1.0)


class TestMetricExtraction:
    def test_rc_f3db(self):
        r, c = 1e3, 1e-9
        circuit = rc_lowpass(r, c)
        dc = solve_dc(circuit)
        result = run_ac(dc, np.logspace(2, 9, 211))
        metrics = extract_metrics(result, "out")
        expected_pole = 1.0 / (2 * np.pi * r * c)
        assert metrics.gain_db == pytest.approx(0.0, abs=1e-4)
        assert metrics.f3db_hz == pytest.approx(expected_pole, rel=0.02)
        # A unity-gain passive filter never crosses 0 dB from above at
        # finite frequency after the pole; UGF equals f3dB region crossing.
        assert np.isfinite(metrics.ugf_hz) or np.isnan(metrics.ugf_hz)

    def test_crossing_interpolation(self):
        freqs = np.array([1.0, 10.0, 100.0])
        mags = np.array([20.0, 20.0, 0.0])
        crossing = crossing_frequency(freqs, mags, 10.0)
        assert 10.0 < crossing < 100.0

    def test_no_crossing_returns_nan(self):
        freqs = np.array([1.0, 10.0, 100.0])
        mags = np.array([5.0, 5.0, 5.0])
        assert np.isnan(crossing_frequency(freqs, mags, 0.0))

    def test_level_above_response_returns_nan(self):
        """A response entirely below the level never crosses from above."""
        freqs = np.array([1.0, 10.0, 100.0])
        mags = np.array([5.0, 4.0, 3.0])
        assert np.isnan(crossing_frequency(freqs, mags, 10.0))

    def test_first_point_crossing(self):
        """Crossing within the very first grid interval."""
        freqs = np.array([1.0, 10.0, 100.0])
        mags = np.array([20.0, 5.0, 1.0])
        frac = (20.0 - 10.0) / (20.0 - 5.0)
        expected = 10.0 ** (0.0 + frac * (np.log10(10.0) - np.log10(1.0)))
        assert crossing_frequency(freqs, mags, 10.0) == expected

    def test_flat_segment_before_crossing(self):
        """A flat at-level plateau: the crossing interval starts at the
        plateau's last point, and interpolation lands exactly on it."""
        freqs = np.array([1.0, 10.0, 100.0])
        mags = np.array([20.0, 20.0, 0.0])
        assert crossing_frequency(freqs, mags, 20.0) == 10.0

    def test_grid_exact_crossing_at_final_sample(self):
        """Regression: a response that lands grid-exactly on the level at
        the *last* grid point is a crossing (the old right-edge-below scan
        returned nan because no interval had a below-level right edge)."""
        freqs = np.array([1.0, 10.0, 100.0])
        mags = np.array([20.0, 12.0, 10.0])
        assert crossing_frequency(freqs, mags, 10.0) == 100.0

    def test_grid_exact_touch_mid_grid(self):
        """A grid-exact hit from strictly above mid-grid resolves to that
        grid point, even when the response recovers afterwards."""
        freqs = np.array([1.0, 10.0, 100.0, 1000.0])
        mags = np.array([20.0, 10.0, 15.0, 5.0])
        assert crossing_frequency(freqs, mags, 10.0) == 10.0

    def test_flat_at_level_plateau_is_not_a_crossing(self):
        """Riding *along* the level never counts as crossing it from
        above; the interpolation therefore never sees m1 == m2."""
        freqs = np.array([1.0, 10.0, 100.0])
        mags = np.array([10.0, 10.0, 10.0])
        assert np.isnan(crossing_frequency(freqs, mags, 10.0))

    def test_vectorized_scan_matches_reference_loop(self):
        """Bit-identity pin of the numpy sign-change scan against a
        pure-Python loop, over random grids (NaN tails included)."""

        def reference(freqs, mags, level_db):
            for i in range(len(freqs) - 1):
                m1, m2 = mags[i], mags[i + 1]
                if (m1 >= level_db and m2 < level_db) or (
                    m1 > level_db and m2 == level_db
                ):
                    log_f1, log_f2 = np.log10(freqs[i]), np.log10(freqs[i + 1])
                    frac = (m1 - level_db) / (m1 - m2)
                    return float(10.0 ** (log_f1 + frac * (log_f2 - log_f1)))
            return float("nan")

        rng = np.random.default_rng(8)
        freqs = np.logspace(0, 9, 181)
        for case in range(50):
            mags = np.cumsum(rng.normal(-0.5, 2.0, freqs.size))
            if case % 5 == 0:
                mags[-rng.integers(1, 20):] = np.nan  # unresolved band edge
            for level in (-10.0, 0.0, float(mags[0]), 10.0):
                expected = reference(freqs, mags, level)
                got = crossing_frequency(freqs, mags, level)
                assert (np.isnan(expected) and np.isnan(got)) or expected == got

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            crossing_frequency(np.array([1.0, 2.0]), np.array([1.0]), 0.0)

    def test_ota_metrics_sane(self, five_t_measurement):
        metrics = five_t_measurement.metrics
        assert metrics.is_valid()
        assert 15.0 < metrics.gain_db < 40.0
        assert 1e6 < metrics.f3db_hz < 1e8
        assert 1e7 < metrics.ugf_hz < 1e9
        # Single-pole-ish consistency: UGF ~ gain * f3dB.
        assert metrics.ugf_hz == pytest.approx(
            metrics.gain_linear * metrics.f3db_hz, rel=0.4
        )

    def test_metrics_as_array(self):
        metrics = PerformanceMetrics(20.0, 1e6, 1e8)
        np.testing.assert_allclose(metrics.as_array(), [20.0, 1e6, 1e8])
        assert metrics.gain_linear == pytest.approx(10.0)

    def test_invalid_metrics_flagged(self):
        metrics = PerformanceMetrics(20.0, float("nan"), 1e8)
        assert not metrics.is_valid()
