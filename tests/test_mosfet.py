"""Tests of the circuit-level MOSFET wrapper (polarity mapping etc.)."""

import pytest

from repro.devices import MOSFET, NMOS_65NM, PMOS_65NM

L = 180e-9


@pytest.fixture
def nmos():
    return MOSFET(name="MN", drain="d", gate="g", source="s", tech=NMOS_65NM, width=5e-6, length=L)


@pytest.fixture
def pmos():
    return MOSFET(name="MP", drain="d", gate="g", source="s", tech=PMOS_65NM, width=5e-6, length=L)


class TestPolarityMapping:
    def test_nmos_normalized_bias(self, nmos):
        vgs, vds = nmos.normalized_bias(vd=0.8, vg=0.6, vs=0.1)
        assert vgs == pytest.approx(0.5)
        assert vds == pytest.approx(0.7)

    def test_pmos_normalized_bias(self, pmos):
        # PMOS with source at 1.2 V: Vsg and Vsd become positive.
        vgs, vds = pmos.normalized_bias(vd=0.5, vg=0.6, vs=1.2)
        assert vgs == pytest.approx(0.6)
        assert vds == pytest.approx(0.7)

    def test_nmos_current_positive_drain_to_source(self, nmos):
        assert nmos.ids(vd=0.8, vg=0.7, vs=0.0) > 0

    def test_pmos_current_negative_drain_to_source(self, pmos):
        # PMOS channel current flows source->drain, so i_ds < 0.
        assert pmos.ids(vd=0.4, vg=0.5, vs=1.2) < 0

    def test_conductances_positive_for_both_polarities(self, nmos, pmos):
        gm_n, gds_n = nmos.conductances(vd=0.8, vg=0.7, vs=0.0)
        gm_p, gds_p = pmos.conductances(vd=0.4, vg=0.5, vs=1.2)
        assert gm_n > 0 and gds_n > 0
        assert gm_p > 0 and gds_p > 0

    def test_jacobian_identity_matches_finite_difference(self, pmos):
        """d(i_ds)/dvg == gm and d(i_ds)/dvd == gds in the circuit frame."""
        vd, vg, vs = 0.4, 0.5, 1.2
        eps = 1e-7
        gm, gds = pmos.conductances(vd, vg, vs)
        dg = (pmos.ids(vd, vg + eps, vs) - pmos.ids(vd, vg - eps, vs)) / (2 * eps)
        dd = (pmos.ids(vd + eps, vg, vs) - pmos.ids(vd - eps, vg, vs)) / (2 * eps)
        assert dg == pytest.approx(gm, rel=1e-5)
        assert dd == pytest.approx(gds, rel=1e-5)


class TestOperatingPoint:
    def test_regions(self, nmos):
        weak = nmos.operating_point(vd=0.6, vg=0.3, vs=0.0)
        strong = nmos.operating_point(vd=1.1, vg=1.1, vs=0.0)
        assert weak.region == "weak"
        assert strong.region == "strong"

    def test_saturation_flag(self, nmos):
        sat = nmos.operating_point(vd=1.0, vg=0.6, vs=0.0)
        triode = nmos.operating_point(vd=0.05, vg=0.8, vs=0.0)
        assert sat.saturated
        assert not triode.saturated

    def test_small_signal_bundle_consistent(self, nmos):
        op = nmos.operating_point(vd=0.8, vg=0.6, vs=0.0)
        arr = op.small_signal.as_array()
        assert arr.shape == (5,)
        assert op.small_signal.id == pytest.approx(arr[0])
        assert op.small_signal.cgs == pytest.approx(arr[4])


class TestConstruction:
    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(ValueError):
            MOSFET("M", "d", "g", "s", NMOS_65NM, width=-1e-6, length=L)
        with pytest.raises(ValueError):
            MOSFET("M", "d", "g", "s", NMOS_65NM, width=1e-6, length=0.0)

    def test_with_width_copies(self, nmos):
        wider = nmos.with_width(10e-6)
        assert wider.width == 10e-6
        assert nmos.width == 5e-6
        assert wider.name == nmos.name
