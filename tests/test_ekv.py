"""Unit and property tests of the EKV compact model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import EKVModel, NMOS_65NM, PMOS_65NM, TechParams
from repro.devices.ekv import interp_f, interp_f_prime

L = 180e-9
MODELS = [EKVModel(NMOS_65NM), EKVModel(PMOS_65NM)]

bias = st.tuples(
    st.floats(min_value=0.0, max_value=1.2),
    st.floats(min_value=0.05, max_value=1.2),
)
width = st.floats(min_value=0.2e-6, max_value=100e-6)


class TestInterpolationFunction:
    def test_weak_inversion_limit(self):
        # F(v) ~ e^v for very negative v.
        v = -20.0
        assert interp_f(v) == pytest.approx(np.exp(v), rel=1e-3)

    def test_strong_inversion_limit(self):
        # F(v) ~ (v/2)^2 for large v.
        v = 60.0
        assert interp_f(v) == pytest.approx((v / 2.0) ** 2, rel=0.1)

    def test_derivative_matches_finite_difference(self):
        vs = np.linspace(-10, 30, 41)
        eps = 1e-6
        numeric = (interp_f(vs + eps) - interp_f(vs - eps)) / (2 * eps)
        np.testing.assert_allclose(interp_f_prime(vs), numeric, rtol=1e-6, atol=1e-12)

    def test_monotone_increasing(self):
        vs = np.linspace(-30, 30, 200)
        assert np.all(np.diff(interp_f(vs)) > 0)

    def test_no_overflow_at_extremes(self):
        assert np.isfinite(interp_f(800.0))
        assert interp_f(-800.0) == pytest.approx(0.0)


class TestDrainCurrent:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.tech.name)
    def test_positive_in_normal_operation(self, model):
        ids = model.drain_current(0.6, 0.6, 10e-6, L)
        assert ids > 0

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.tech.name)
    def test_zero_vds_zero_current(self, model):
        assert model.drain_current(0.6, 0.0, 10e-6, L) == pytest.approx(0.0, abs=1e-15)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.tech.name)
    def test_symmetric_reverse_conduction(self, model):
        forward = model.drain_current(0.6, 0.3, 10e-6, L)
        assert model.drain_current(0.6, -0.3, 10e-6, L) < 0
        assert forward > 0

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.tech.name)
    def test_monotone_in_vgs(self, model):
        vgs = np.linspace(0.0, 1.2, 40)
        ids = model.drain_current(vgs, 0.6, 10e-6, L)
        assert np.all(np.diff(ids) > 0)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.tech.name)
    def test_monotone_in_vds(self, model):
        vds = np.linspace(0.0, 1.2, 40)
        ids = model.drain_current(0.6, vds, 10e-6, L)
        assert np.all(np.diff(ids) > 0)

    @settings(max_examples=50, deadline=None)
    @given(bias=bias, w=width)
    def test_linear_in_width(self, bias, w):
        vgs, vds = bias
        model = MODELS[0]
        single = model.drain_current(vgs, vds, w, L)
        double = model.drain_current(vgs, vds, 2.0 * w, L)
        assert double == pytest.approx(2.0 * single, rel=1e-12)


class TestSmallSignalParameters:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.tech.name)
    def test_gm_matches_numeric_derivative(self, model):
        eps = 1e-6
        for vgs in (0.3, 0.5, 0.8):
            for vds in (0.2, 0.6, 1.1):
                numeric = (
                    model.drain_current(vgs + eps, vds, 5e-6, L)
                    - model.drain_current(vgs - eps, vds, 5e-6, L)
                ) / (2 * eps)
                analytic = model.transconductance(vgs, vds, 5e-6, L)
                assert analytic == pytest.approx(numeric, rel=1e-5)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.tech.name)
    def test_gds_matches_numeric_derivative(self, model):
        eps = 1e-6
        for vgs in (0.3, 0.5, 0.8):
            for vds in (0.2, 0.6, 1.1):
                numeric = (
                    model.drain_current(vgs, vds + eps, 5e-6, L)
                    - model.drain_current(vgs, vds - eps, 5e-6, L)
                ) / (2 * eps)
                analytic = model.output_conductance(vgs, vds, 5e-6, L)
                assert analytic == pytest.approx(numeric, rel=1e-5)

    @settings(max_examples=50, deadline=None)
    @given(bias=bias, w=width)
    def test_all_outputs_nonnegative(self, bias, w):
        vgs, vds = bias
        for model in MODELS:
            values = model.evaluate_all(vgs, vds, w, L)
            for name, value in values.items():
                assert float(value) >= 0.0, name

    @settings(max_examples=50, deadline=None)
    @given(bias=bias, w=width)
    def test_gm_over_id_is_width_independent(self, bias, w):
        vgs, vds = bias
        model = MODELS[0]
        id1 = float(model.drain_current(vgs, vds, w, L))
        if id1 < 1e-15:
            return
        ratio1 = float(model.transconductance(vgs, vds, w, L)) / id1
        id2 = float(model.drain_current(vgs, vds, 3 * w, L))
        ratio2 = float(model.transconductance(vgs, vds, 3 * w, L)) / id2
        assert ratio1 == pytest.approx(ratio2, rel=1e-10)

    def test_gm_over_id_weak_inversion_limit(self):
        # In deep weak inversion gm/Id approaches 1/(n*Ut).
        model = MODELS[0]
        tech = model.tech
        vgs = 0.15  # far below threshold
        gm = float(model.transconductance(vgs, 0.6, 10e-6, L))
        id_ = float(model.drain_current(vgs, 0.6, 10e-6, L))
        assert gm / id_ == pytest.approx(1.0 / (tech.n_slope * tech.ut), rel=0.05)

    @settings(max_examples=30, deadline=None)
    @given(bias=bias, w=width)
    def test_capacitances_linear_in_width(self, bias, w):
        vgs, vds = bias
        model = MODELS[1]
        cgs1 = float(model.gate_source_capacitance(vgs, vds, w, L))
        cgs2 = float(model.gate_source_capacitance(vgs, vds, 2 * w, L))
        assert cgs2 == pytest.approx(2 * cgs1, rel=1e-12)
        cds1 = float(model.drain_source_capacitance(vgs, vds, w, L))
        cds2 = float(model.drain_source_capacitance(vgs, vds, 2 * w, L))
        assert cds2 == pytest.approx(2 * cds1, rel=1e-12)

    def test_cgs_increases_with_inversion(self):
        model = MODELS[0]
        vgs = np.linspace(0.1, 1.2, 30)
        cgs = model.gate_source_capacitance(vgs, 0.6, 10e-6, L)
        assert np.all(np.diff(cgs) > 0)

    def test_cds_decreases_with_vds(self):
        model = MODELS[0]
        vds = np.linspace(0.0, 1.2, 30)
        cds = model.drain_source_capacitance(0.6, vds, 10e-6, L)
        assert np.all(np.diff(cds) < 0)


class TestRegions:
    def test_inversion_coefficient_monotone_in_vgs(self):
        model = MODELS[0]
        vgs = np.linspace(0.0, 1.2, 50)
        ic = model.inversion_coefficient(vgs, 0.6)
        assert np.all(np.diff(ic) > 0)

    def test_saturation_voltage_grows_with_vgs(self):
        model = MODELS[0]
        vgs = np.linspace(0.2, 1.2, 30)
        vdsat = model.saturation_voltage(vgs)
        assert np.all(np.diff(vdsat) >= 0)

    def test_weak_inversion_saturation_floor(self):
        # In weak inversion Vds,sat -> ~4 Ut plus a small IC term.
        model = MODELS[0]
        vdsat = float(model.saturation_voltage(0.1))
        assert 3.5 * model.tech.ut < vdsat < 6.0 * model.tech.ut

    def test_is_saturated_consistent(self):
        model = MODELS[0]
        assert bool(model.is_saturated(0.5, 1.0))
        assert not bool(model.is_saturated(0.5, 0.05))


class TestTechParams:
    def test_invalid_polarity_rejected(self):
        with pytest.raises(ValueError):
            TechParams(name="bad", polarity=0, vt0=0.4, n_slope=1.3, kp=1e-4)

    def test_negative_vt_rejected(self):
        with pytest.raises(ValueError):
            TechParams(name="bad", polarity=1, vt0=-0.4, n_slope=1.3, kp=1e-4)

    def test_slope_below_one_rejected(self):
        with pytest.raises(ValueError):
            TechParams(name="bad", polarity=1, vt0=0.4, n_slope=0.9, kp=1e-4)

    def test_spec_current_scales_with_geometry(self):
        ispec1 = NMOS_65NM.spec_current(1e-6, L)
        assert NMOS_65NM.spec_current(2e-6, L) == pytest.approx(2 * ispec1)
        assert NMOS_65NM.spec_current(1e-6, 2 * L) == pytest.approx(ispec1 / 2)

    def test_spec_current_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            NMOS_65NM.spec_current(-1e-6, L)

    def test_with_override(self):
        modified = NMOS_65NM.with_(vt0=0.5)
        assert modified.vt0 == 0.5
        assert modified.kp == NMOS_65NM.kp
