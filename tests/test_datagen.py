"""Tests of sampling, filtering, dataset generation and serialization."""

import numpy as np
import pytest

from repro.datagen import (
    DesignFilter,
    OTADataset,
    SequenceBuilder,
    SequenceConfig,
    SequenceFormat,
    SpecRange,
    build_corpus,
    generate_dataset,
    grid_sampler,
    random_sampler,
)
from repro.datagen.dataset import DesignRecord
from repro.spice import PerformanceMetrics

from tests.conftest import GOOD_WIDTHS


class TestSamplers:
    def test_random_sampler_respects_bounds(self, five_t, rng):
        for sample in random_sampler(five_t, rng, 50):
            for name, width in sample.items():
                low, high = five_t.group(name).width_bounds
                assert low <= width <= high

    def test_random_sampler_count(self, five_t, rng):
        samples = list(random_sampler(five_t, rng, 7))
        assert len(samples) == 7

    def test_grid_sampler_cartesian(self, five_t):
        samples = list(grid_sampler(five_t, 3))
        assert len(samples) == 3 ** len(five_t.group_names)
        # End points are the bounds themselves.
        firsts = samples[0]
        for name, width in firsts.items():
            assert width == pytest.approx(five_t.group(name).width_bounds[0])

    def test_grid_sampler_validation(self, five_t):
        with pytest.raises(ValueError):
            list(grid_sampler(five_t, 0))


class TestFilters:
    def test_good_design_accepted(self, five_t, five_t_measurement):
        design_filter = DesignFilter(five_t, icmr_margin=0.05)
        decision = design_filter(GOOD_WIDTHS["5T-OTA"], five_t_measurement)
        assert decision.accepted

    def test_region_violation_rejected(self, five_t):
        # Oversized loads leave strong inversion.
        widths = {"M1": 2.5e-6, "M3": 5e-6, "M5": 0.7e-6}
        result = five_t.measure(widths)
        design_filter = DesignFilter(five_t, check_icmr=False)
        decision = design_filter(widths, result)
        if not five_t.regions_ok(result.dc):
            assert not decision.accepted
            assert "region" in decision.reason

    def test_spec_range_filter(self, five_t, five_t_measurement):
        narrow = SpecRange(gain_db=(0.0, 1.0), f3db_hz=(1.0, 2.0), ugf_hz=(1.0, 2.0))
        design_filter = DesignFilter(five_t, spec_range=narrow, check_icmr=False, check_regions=False)
        decision = design_filter(GOOD_WIDTHS["5T-OTA"], five_t_measurement)
        assert not decision.accepted
        assert "specification" in decision.reason

    def test_spec_range_contains(self):
        window = SpecRange(gain_db=(10, 30), f3db_hz=(1e6, 1e8), ugf_hz=(1e7, 1e9))
        assert window.contains(PerformanceMetrics(20.0, 1e7, 1e8))
        assert not window.contains(PerformanceMetrics(40.0, 1e7, 1e8))
        assert not window.contains(PerformanceMetrics(20.0, float("nan"), 1e8))


class TestGeneration:
    @pytest.fixture(scope="class")
    def small_dataset(self, five_t):
        rng = np.random.default_rng(7)
        return generate_dataset(
            five_t, 12, rng, design_filter=DesignFilter(five_t, icmr_margin=0.05), max_attempts=400
        )

    def test_accepts_requested_count(self, small_dataset):
        assert len(small_dataset) == 12

    def test_stats_funnel_consistent(self, small_dataset):
        stats = small_dataset.stats
        rejected = sum(stats.rejections.values())
        assert stats.accepted + rejected + stats.convergence_failures == stats.attempted

    def test_records_have_group_params(self, small_dataset, five_t):
        for record in small_dataset.records:
            assert set(record.widths) == set(five_t.group_names)
            assert set(record.device_params) == set(five_t.group_names)
            for params in record.device_params.values():
                assert set(params) == {"gm", "gds", "cds", "cgs", "id"}

    def test_metric_ranges(self, small_dataset):
        ranges = small_dataset.metric_ranges()
        assert ranges["gain_db"][0] <= ranges["gain_db"][1]

    def test_split_partitions(self, small_dataset):
        rng = np.random.default_rng(0)
        train, val = small_dataset.split(0.75, rng)
        assert len(train) == 9 and len(val) == 3

    def test_save_load_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "ds.json"
        small_dataset.save(path)
        restored = OTADataset.load(path)
        assert restored.topology_name == small_dataset.topology_name
        assert len(restored) == len(small_dataset)
        assert restored.records[0].gain_db == pytest.approx(small_dataset.records[0].gain_db)


def fake_record(five_t):
    result = five_t.measure(GOOD_WIDTHS["5T-OTA"])
    return DesignRecord(
        widths=dict(GOOD_WIDTHS["5T-OTA"]),
        gain_db=result.metrics.gain_db,
        f3db_hz=result.metrics.f3db_hz,
        ugf_hz=result.metrics.ugf_hz,
        device_params={g.name: dict(result.device_params[g.name]) for g in five_t.groups},
    )


class TestSerializeRoundtrip:
    @pytest.fixture(scope="class")
    def record(self, five_t):
        return fake_record(five_t)

    @pytest.mark.parametrize("fmt", list(SequenceFormat), ids=lambda f: f.value)
    def test_decoder_text_parses_back(self, five_t, record, fmt):
        builder = SequenceBuilder(five_t, SequenceConfig(decoder_format=fmt))
        text = builder.decoder_text(record.device_params)
        parsed = builder.parse_decoder_text(text)
        assert parsed.complete, parsed.missing
        for group, params in record.device_params.items():
            for key in ("gm", "gds", "cds", "cgs", "id"):
                assert parsed.values[group][key] == pytest.approx(params[key], rel=6e-3)

    def test_encoder_contains_topology_and_specs(self, five_t, record):
        builder = SequenceBuilder(five_t, SequenceConfig())
        text = builder.encoder_text(record.gain_db, record.f3db_hz, record.ugf_hz)
        assert text.startswith("<5T-OTA>")
        assert "gain=" in text and "bw=" in text and "ugf=" in text
        assert "gmM3" in text  # symbolic paths present

    def test_encoder_without_paths(self, five_t, record):
        builder = SequenceBuilder(five_t, SequenceConfig(include_paths_in_encoder=False))
        text = builder.encoder_text(record.gain_db, record.f3db_hz, record.ugf_hz)
        assert "gmM3" not in text

    def test_specs_per_path_replication(self, five_t, record):
        builder = SequenceBuilder(five_t, SequenceConfig(specs_per_path=True))
        text = builder.encoder_text(record.gain_db, record.f3db_hz, record.ugf_hz)
        assert text.count("gain=") > 1

    def test_parse_tolerates_malformed_values(self, five_t):
        builder = SequenceBuilder(five_t, SequenceConfig())
        parsed = builder.parse_decoder_text("gmM1=garbage gdsM1=1.0uS CdsM1=30.3.3fF")
        assert not parsed.complete
        assert "gmM1" in parsed.missing

    def test_parse_rejects_wrong_units(self, five_t):
        builder = SequenceBuilder(five_t, SequenceConfig())
        parsed = builder.parse_decoder_text("gmM1=2.50mF")  # farads for a gm
        assert "gm" not in parsed.values.get("M1", {})

    def test_full_paths_contains_substituted_values(self, five_t, record):
        builder = SequenceBuilder(five_t, SequenceConfig(decoder_format=SequenceFormat.FULL_PATHS))
        text = builder.decoder_text(record.device_params)
        assert "gmM3" not in text.partition("|")[0]  # values substituted
        assert "sCL" in text  # load cap stays symbolic
        assert "IdM3=" in text  # trailing Id block


class TestCorpus:
    def test_single_model_multi_topology_corpus(self, five_t, cm_ota):
        ds5 = OTADataset("5T-OTA", [fake_record(five_t)])
        result = cm_ota.measure(GOOD_WIDTHS["CM-OTA"])
        rec_cm = DesignRecord(
            widths=dict(GOOD_WIDTHS["CM-OTA"]),
            gain_db=result.metrics.gain_db,
            f3db_hz=result.metrics.f3db_hz,
            ugf_hz=result.metrics.ugf_hz,
            device_params={g.name: dict(result.device_params[g.name]) for g in cm_ota.groups},
        )
        dscm = OTADataset("CM-OTA", [rec_cm])
        corpus = build_corpus([ds5, dscm], num_merges=100)
        assert set(corpus.pairs_by_topology) == {"5T-OTA", "CM-OTA"}
        pairs = corpus.all_pairs()
        assert len(pairs) == 2
        # Shared vocabulary across topologies; no unknown tokens.
        for pair in pairs:
            assert corpus.vocab.unk_id not in pair.source
            assert corpus.vocab.unk_id not in pair.target

    def test_encode_decode_text(self, five_t):
        ds5 = OTADataset("5T-OTA", [fake_record(five_t)])
        corpus = build_corpus([ds5], num_merges=50)
        text = "<5T-OTA> gain=24.0dB"
        ids = corpus.encode_text(text)
        assert corpus.decode_ids(ids) == text
