"""Tests of the batched sizing service: requests, cache, engine, CLI.

The parity tests are the contract of the service redesign: batched
decoding (padded sources, per-sequence EOS) must produce *bit-identical*
decoded texts and widths to the sequential ``SizingFlow.size`` path, and
the round-batched Stage IV (one ``measure_many`` per topology per round)
must produce bit-identical traces and accounting to the sequential
per-candidate verification backend.
"""

import json
import math

import numpy as np
import pytest

from repro.core import DesignSpec, PipelineConfig, SizingFlow, train_sizing_model
from repro.core.bundle import SizingModel
from repro.datagen import SequenceBuilder, SequenceConfig
from repro.service import ResultCache, SizingEngine, SizingRequest, SizingResponse
from repro.service.cache import quantize_spec
from repro.solvers import BatchedBackend, ScalarBackend
from repro.spice import PerformanceMetrics
from repro.topologies import (
    FiveTransistorOTA,
    available_topologies,
    register,
    topology_by_name,
    unregister,
)

from tests.conftest import (
    BatchedOracleModel,
    CountingBackend,
    PoisonedFiveT,
    assert_responses_identical,
)

# ----------------------------------------------------------------------
# Topology registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_paper_topologies_registered(self):
        assert {"5T-OTA", "CM-OTA", "2S-OTA"} <= set(available_topologies())

    def test_register_and_unregister_custom(self):
        register(lambda: FiveTransistorOTA(), name="TEST-OTA")
        try:
            assert "TEST-OTA" in available_topologies()
            assert topology_by_name("TEST-OTA").name == "5T-OTA"
        finally:
            unregister("TEST-OTA")
        assert "TEST-OTA" not in available_topologies()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(FiveTransistorOTA)

    def test_replace_allows_shadowing(self):
        register(FiveTransistorOTA, replace=True)
        assert topology_by_name("5T-OTA").name == "5T-OTA"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="registered:"):
            topology_by_name("NOPE-OTA")

    def test_factory_without_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            register(lambda: FiveTransistorOTA())


# ----------------------------------------------------------------------
# Request/response JSON round trips
# ----------------------------------------------------------------------
class TestRequestJSON:
    def test_round_trip(self):
        request = SizingRequest.for_spec(
            "5T-OTA", 25.0, 5e6, 8e7, id="r1", max_iterations=4, rel_tol=0.01,
            method="pso", budget=200,
        )
        restored = SizingRequest.from_json_line(request.to_json_line())
        assert restored == request

    def test_ids_auto_generated_and_unique(self):
        a = SizingRequest.for_spec("5T-OTA", 25.0, 5e6, 8e7)
        b = SizingRequest.for_spec("5T-OTA", 25.0, 5e6, 8e7)
        assert a.id != b.id

    def test_optional_fields_default(self):
        request = SizingRequest.from_json(
            {"topology": "5T-OTA", "gain_db": 25.0, "f3db_hz": 5e6, "ugf_hz": 8e7}
        )
        assert request.max_iterations == 6
        assert request.rel_tol == 0.0
        assert request.method == "copilot"
        assert request.budget is None
        assert request.iteration_budget == 6

    def test_budget_overrides_copilot_iterations(self):
        request = SizingRequest.for_spec("5T-OTA", 25.0, 5e6, 8e7, budget=2)
        assert request.iteration_budget == 2

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            SizingRequest.from_json({"topology": "5T-OTA", "gain_db": 25.0})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            SizingRequest.from_json(
                {"topology": "5T-OTA", "gain_db": 25.0, "f3db_hz": 5e6,
                 "ugf_hz": 8e7, "bogus": 1}
            )

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SizingRequest.for_spec("5T-OTA", -1.0, 5e6, 8e7)
        with pytest.raises(ValueError):
            SizingRequest.for_spec("5T-OTA", 25.0, 5e6, 8e7, max_iterations=-1)
        with pytest.raises(ValueError):
            SizingRequest.for_spec("5T-OTA", 25.0, 5e6, 8e7, rel_tol=1.5)
        with pytest.raises(ValueError):
            SizingRequest.for_spec("5T-OTA", 25.0, 5e6, 8e7, method="")
        with pytest.raises(ValueError):
            SizingRequest.for_spec("5T-OTA", 25.0, 5e6, 8e7, budget=-1)


class TestResponseJSON:
    def _response(self, **overrides):
        payload = dict(
            request_id="r1",
            topology="5T-OTA",
            success=True,
            widths={"M1": 1.2e-6, "M3": 1.5e-5},
            metrics=PerformanceMetrics(25.3, 5.4e6, 9.1e7),
            iterations=1,
            spice_simulations=1,
            wall_time_s=0.25,
            decoded_texts=("gmM1=2.50mS",),
        )
        payload.update(overrides)
        return SizingResponse(**payload)

    def test_round_trip(self):
        response = self._response()
        restored = SizingResponse.from_json_line(response.to_json_line())
        assert restored == response

    def test_round_trip_failure_without_metrics(self):
        response = self._response(success=False, widths=None, metrics=None, error="boom")
        restored = SizingResponse.from_json_line(response.to_json_line())
        assert restored == response

    def test_nan_metrics_serialize_as_null(self):
        response = self._response(metrics=PerformanceMetrics(25.0, float("nan"), 9e7))
        payload = json.loads(response.to_json_line())
        assert payload["metrics"]["f3db_hz"] is None
        restored = SizingResponse.from_json(payload)
        assert math.isnan(restored.metrics.f3db_hz)
        assert restored.metrics.gain_db == 25.0

    def test_single_simulation_property(self):
        assert self._response().single_simulation
        assert not self._response(spice_simulations=2).single_simulation
        assert not self._response(success=False).single_simulation

    def test_method_round_trips_and_defaults(self):
        response = self._response(method="de")
        restored = SizingResponse.from_json_line(response.to_json_line())
        assert restored.method == "de"
        # Pre-redesign payloads (no method key) parse as copilot responses.
        payload = json.loads(self._response().to_json_line())
        del payload["method"]
        assert SizingResponse.from_json(payload).method == "copilot"


# ----------------------------------------------------------------------
# Spec quantization
# ----------------------------------------------------------------------
class TestQuantizeSpec:
    def test_rounds_to_three_significant_digits(self):
        assert quantize_spec(25.004) == 25.0
        assert quantize_spec(1.23456e6) == 1.23e6
        assert quantize_spec(9.999e-7, sig_digits=2) == 1.0e-6

    @pytest.mark.parametrize(
        "value", [float("inf"), float("-inf"), float("nan")]
    )
    def test_non_finite_value_rejected(self, value):
        # Regression: inf survives %g formatting and nan never equals
        # itself, so a non-finite target used to poison cache keys
        # silently instead of failing at the bad request.
        with pytest.raises(ValueError, match="non-finite"):
            quantize_spec(value)

    def test_non_finite_spec_cannot_form_a_cache_key(self):
        # inf passes DesignSpec's positivity validation, so the cache key
        # is the last line of defense.
        request = SizingRequest.for_spec("5T-OTA", float("inf"), 5e6, 8e7)
        with pytest.raises(ValueError, match="non-finite"):
            ResultCache.key(request)


# ----------------------------------------------------------------------
# LRU result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def _request(self, gain=25.0, **kwargs):
        return SizingRequest.for_spec("5T-OTA", gain, 5e6, 8e7, **kwargs)

    def _response(self, request, success=True, metrics="auto"):
        if metrics == "auto":
            # Comfortably above the default request targets.
            metrics = PerformanceMetrics(26.0, 6e6, 9e7)
        return SizingResponse(
            request_id=request.id, topology=request.topology, success=success,
            widths={"M1": 1e-6}, metrics=metrics, iterations=1,
            spice_simulations=1, wall_time_s=0.1,
        )

    def test_near_duplicate_hits_after_quantization(self):
        cache = ResultCache()
        request = self._request(gain=25.0)
        cache.put(request, self._response(request))
        # 25.004 quantizes to 25.0 at 3 significant digits, and the cached
        # design's 26.0 dB measurement satisfies the new exact target too.
        near = self._request(gain=25.004, id="other")
        hit = cache.get(near)
        assert hit is not None
        assert hit.cached
        assert hit.request_id == "other"

    def test_near_duplicate_not_served_when_metrics_fall_short(self):
        """A cached success must not transfer to a (quantization-equal)
        request whose exact targets the cached design misses."""
        cache = ResultCache()
        request = self._request(gain=25.0)
        # Measured gain 25.01: satisfies 25.0 but not 25.04.
        cache.put(
            request,
            self._response(request, metrics=PerformanceMetrics(25.01, 6e6, 9e7)),
        )
        tighter = self._request(gain=25.04, id="tighter")
        assert cache.get(tighter) is None

    def test_failure_served_only_for_exact_spec(self):
        cache = ResultCache()
        request = self._request(gain=25.0)
        cache.put(request, self._response(request, success=False, metrics=None))
        # Identical spec: deterministic flow, failure transfers.
        assert cache.get(self._request(gain=25.0, id="same")) is not None
        # Near-duplicate: a fresh run might succeed — don't serve the failure.
        assert cache.get(self._request(gain=25.004, id="near")) is None

    def test_different_loop_params_miss(self):
        cache = ResultCache()
        request = self._request()
        cache.put(request, self._response(request))
        assert cache.get(self._request(max_iterations=3)) is None
        assert cache.get(self._request(rel_tol=0.01)) is None

    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        first, second, third = (self._request(gain=20.0 + i) for i in range(3))
        cache.put(first, self._response(first))
        cache.put(second, self._response(second))
        assert cache.get(first) is not None  # refresh: now `second` is LRU
        cache.put(third, self._response(third))
        assert len(cache) == 2
        assert cache.get(second) is None
        assert cache.get(first) is not None
        assert cache.get(third) is not None


# ----------------------------------------------------------------------
# Engine parity with the sequential path (real tiny transformer)
# ----------------------------------------------------------------------
TINY_SERVICE = PipelineConfig(
    designs_per_topology=(("5T-OTA", 25), ("CM-OTA", 16)),
    epochs=2,
    d_model=32,
    n_heads=4,
    d_ff=48,
    dropout=0.0,
    num_merges=150,
    encoder_max_paths=1,
    learning_rate=1e-3,
    batch_size=8,
    dtype="float32",
    seed=7,
)


@pytest.fixture(scope="module")
def tiny_artifacts():
    return train_sizing_model(TINY_SERVICE)


class TestBatchedDecodeParity:
    """Batched and sequential decodes are compared with *exact* equality.

    This leans on row independence (padding masks contribute exact zeros;
    per-row matmul slices reduce in the same order for any batch size on
    numpy's BLAS).  If a future BLAS build breaks the bitwise assumption,
    these asserts are the early-warning signal — expect at most a last-ulp
    logit difference flipping a near-tie argmax.
    """

    def test_predict_params_batch_matches_sequential(self, tiny_artifacts):
        model = tiny_artifacts.model
        for name in ("5T-OTA", "CM-OTA"):
            records = (tiny_artifacts.val_records[name] + tiny_artifacts.train_records[name])[:8]
            specs = [DesignSpec(r.gain_db, r.f3db_hz, r.ugf_hz) for r in records]
            sequential = [model.predict_params(name, spec)[1] for spec in specs]
            batched = [text for _, text in model.predict_params_batch(name, specs)]
            assert batched == sequential

    def test_predict_params_many_fuses_topologies(self, tiny_artifacts):
        """A cross-topology fused decode must match per-spec decodes."""
        model = tiny_artifacts.model
        specs_by_topology = {
            name: [
                DesignSpec(r.gain_db, r.f3db_hz, r.ugf_hz)
                for r in tiny_artifacts.val_records[name][:3]
            ]
            for name in ("5T-OTA", "CM-OTA")
        }
        fused = model.predict_params_many(specs_by_topology)
        for name, specs in specs_by_topology.items():
            sequential = [model.predict_params(name, spec)[1] for spec in specs]
            assert [text for _, text in fused[name]] == sequential

    def test_empty_batch(self, tiny_artifacts):
        assert tiny_artifacts.model.predict_params_batch("5T-OTA", []) == []

    def test_size_batch_matches_sequential_flows(self, tiny_artifacts):
        """The headline parity contract over mixed topologies."""
        requests = []
        for name in ("5T-OTA", "CM-OTA"):
            for record in tiny_artifacts.val_records[name][:2]:
                requests.append(
                    SizingRequest.for_spec(
                        name, record.gain_db, record.f3db_hz, record.ugf_hz,
                        max_iterations=2,
                    )
                )
        flows = {
            name: SizingFlow(topology_by_name(name), tiny_artifacts.model)
            for name in ("5T-OTA", "CM-OTA")
        }
        sequential = [
            flows[r.topology].size(r.spec, max_iterations=r.max_iterations)
            for r in requests
        ]
        engine = SizingEngine(tiny_artifacts.model, cache_size=0)
        responses = engine.size_batch(requests)
        assert [r.request_id for r in responses] == [r.id for r in requests]
        # The wire schema stamps the request's method explicitly, never
        # relying on the dataclass default.
        assert [r.method for r in responses] == ["copilot"] * len(requests)
        for result, response in zip(sequential, responses, strict=True):
            assert [t.decoded_text for t in result.trace] == list(response.decoded_texts)
            assert result.widths == response.widths
            assert result.success == response.success
            assert result.iterations == response.iterations
            assert result.spice_simulations == response.spice_simulations


# ----------------------------------------------------------------------
# Engine semantics through a deterministic oracle model (SPICE exercised)
# ----------------------------------------------------------------------
# The oracle model and the measured mini-dataset (``oracle_setup``)
# moved to tests/conftest.py — they are shared with test_serve.py.


class TestEngineServing:
    def _engine(self, oracle_setup, **kwargs):
        topology, records, luts = oracle_setup
        model = BatchedOracleModel(topology, records, luts)
        engine = SizingEngine(model, **kwargs)
        engine.adopt_topology(topology)
        return engine, model, records

    def _achievable(self, record, **kwargs):
        return SizingRequest.for_spec(
            "5T-OTA",
            record.gain_db * 0.995,
            record.f3db_hz * 0.98,
            record.ugf_hz * 0.98,
            **kwargs,
        )

    def test_batch_uses_batched_decode_and_sizes(self, oracle_setup):
        engine, model, records = self._engine(oracle_setup, cache_size=0)
        requests = [self._achievable(r) for r in records[:4]]
        responses = engine.size_batch(requests)
        assert all(r.success for r in responses)
        # The oracle is near-perfect: most specs close in one simulation,
        # the rest within the copilot budget.
        assert sum(r.single_simulation for r in responses) >= 3
        assert model.batch_calls >= 1
        assert engine.stats.spice_simulations == sum(r.spice_simulations for r in responses)

    def test_single_request_uses_single_path(self, oracle_setup):
        engine, model, records = self._engine(oracle_setup, cache_size=0)
        response = engine.size(self._achievable(records[0]))
        assert response.success
        assert model.batch_calls == 0
        assert model.single_calls >= 1

    def test_cache_skips_inference_for_duplicates(self, oracle_setup):
        engine, model, records = self._engine(oracle_setup, cache_size=16)
        request = self._achievable(records[0], id="first")
        first = engine.size(request)
        sequences_after_first = engine.stats.inference_sequences
        repeat = self._achievable(records[0], id="repeat")
        second = engine.size(repeat)
        assert engine.stats.inference_sequences == sequences_after_first
        assert engine.stats.cache_hits == 1
        assert second.cached and not first.cached
        assert second.request_id == "repeat"
        assert second.widths == first.widths

    def test_in_batch_duplicates_coalesce(self, oracle_setup):
        engine, model, records = self._engine(oracle_setup, cache_size=16)
        requests = [
            self._achievable(records[0], id="lead"),
            self._achievable(records[1], id="other"),
            self._achievable(records[0], id="dupe"),
        ]
        responses = engine.size_batch(requests)
        assert [r.request_id for r in responses] == ["lead", "other", "dupe"]
        assert responses[2].cached
        assert responses[2].widths == responses[0].widths
        assert engine.stats.spice_simulations == 2

    def test_cache_and_coalesce_counters_agree(self, oracle_setup):
        """``EngineStats.cache_hits`` must mirror ``ResultCache.hits``;
        in-batch duplicate followers are counted under ``coalesced``."""
        engine, model, records = self._engine(oracle_setup, cache_size=16)
        warm = self._achievable(records[0], id="warm")
        engine.size(warm)  # populates the cache (a miss on the way in)
        requests = [
            self._achievable(records[0], id="hit"),       # cache hit
            self._achievable(records[1], id="lead"),
            self._achievable(records[1], id="dupe"),      # in-batch duplicate
            self._achievable(records[2], id="fresh"),
        ]
        responses = engine.size_batch(requests)
        assert [r.request_id for r in responses] == ["hit", "lead", "dupe", "fresh"]
        assert engine.stats.cache_hits == 1
        assert engine.stats.coalesced == 1
        # The drift this pins: engine counters and cache counters agree.
        assert engine.stats.cache_hits == engine.cache.hits
        # warm, lead, dupe and fresh consulted the cache and missed (the
        # duplicate coalesces on the in-batch leader, not on the cache).
        assert engine.cache.misses == 4

    def test_responses_stamp_request_method(self, oracle_setup):
        """Success, failure and error responses all carry the request's
        method explicitly (never the dataclass default)."""
        engine, model, records = self._engine(oracle_setup, cache_size=16)
        ok = engine.size(self._achievable(records[0]))
        assert ok.success and ok.method == "copilot"
        failed = engine.size(
            SizingRequest.for_spec("5T-OTA", 90.0, 1e9, 1e11, max_iterations=1)
        )
        assert not failed.success and failed.method == "copilot"
        error = engine.size(SizingRequest.for_spec("MISSING-OTA", 25.0, 5e6, 8e7))
        assert error.error is not None and error.method == "copilot"

    def test_unknown_topology_yields_error_response(self, oracle_setup):
        engine, model, records = self._engine(oracle_setup, cache_size=0)
        good = self._achievable(records[0])
        bad = SizingRequest.for_spec("MISSING-OTA", 25.0, 5e6, 8e7)
        responses = engine.size_batch([bad, good])
        assert not responses[0].success
        assert "MISSING-OTA" in responses[0].error
        assert responses[1].success

    def test_failed_request_reports_best_iterate(self, oracle_setup):
        """The 'best' tracker must keep the closest attempt, not the last."""
        engine, model, records = self._engine(oracle_setup, cache_size=0)
        impossible = SizingRequest.for_spec(
            "5T-OTA", 90.0, 1e9, 1e11, max_iterations=3
        )
        response = engine.size(impossible)
        assert not response.success
        assert response.metrics is not None  # best effort reported
        result = engine.size_result(impossible)
        shortfalls = [
            sum(impossible.spec.miss_fractions(t.metrics).values())
            for t in result.trace if t.metrics is not None
        ]
        best_reported = sum(impossible.spec.miss_fractions(result.metrics).values())
        assert best_reported == min(shortfalls)

    def test_zero_iteration_budget_fails_gracefully(self, oracle_setup):
        """max_iterations=0 returns a failed result without inference
        (the pre-engine SizingFlow behavior)."""
        engine, model, records = self._engine(oracle_setup, cache_size=0)
        response = engine.size(self._achievable(records[0], max_iterations=0))
        assert not response.success
        assert response.iterations == 0
        assert response.spice_simulations == 0
        assert model.single_calls == 0

        topology, _, luts = oracle_setup
        flow = SizingFlow(topology, model)
        result = flow.size(DesignSpec(25.0, 3e6, 6e7), max_iterations=0)
        assert not result.success and result.iterations == 0

    def test_run_sizing_study_uses_batched_inference(self, oracle_setup):
        """Table VIII studies must ride the engine's fused-decode path and
        stay identical to the sequential facade."""
        from repro.core import run_sizing_study

        topology, records, luts = oracle_setup
        model = BatchedOracleModel(topology, records, luts)
        flow = SizingFlow(topology, model)
        specs = [
            DesignSpec(r.gain_db * 0.995, r.f3db_hz * 0.98, r.ugf_hz * 0.98)
            for r in records[:4]
        ]
        study = run_sizing_study(flow, specs)
        assert study.total == len(specs)
        assert model.batch_calls >= 1  # fused decode, not a per-spec loop

        reference_flow = SizingFlow(topology, BatchedOracleModel(topology, records, luts))
        for spec, result in zip(specs, study.results, strict=True):
            reference = reference_flow.size(spec)
            assert reference.widths == result.widths
            assert reference.success == result.success
            assert reference.spice_simulations == result.spice_simulations
            assert reference.iterations == result.iterations

    def test_flow_delegates_to_engine(self, oracle_setup):
        topology, records, luts = oracle_setup
        model = BatchedOracleModel(topology, records, luts)
        flow = SizingFlow(topology, model)
        record = records[0]
        spec = DesignSpec(record.gain_db * 0.995, record.f3db_hz * 0.98, record.ugf_hz * 0.98)
        result = flow.size(spec)
        assert result.success
        assert result.single_simulation
        assert model.batch_calls == 0  # sequential facade stays single-shot


# ----------------------------------------------------------------------
# Round-batched Stage IV parity with the sequential verification backend
# ----------------------------------------------------------------------
class _MixedOracleModel(SizingModel):
    """The oracle stand-in generalized to several topologies: answers each
    request with the parameters of that topology's closest dataset design."""

    def __init__(self, topologies, records_by_name, luts):
        builders = {
            topology.name: SequenceBuilder(topology, SequenceConfig())
            for topology in topologies
        }
        super().__init__(
            transformer=None,
            bpe=None,
            vocab=None,
            sequence_config=SequenceConfig(),
            builders=builders,
            luts=luts,
        )
        self._records = records_by_name

    def predict_params(self, topology_name, spec, max_len=None):
        from repro.datagen.serialize import ParsedParams

        def distance(record):
            return (
                abs(np.log(record.gain_db / spec.gain_db))
                + abs(np.log(record.f3db_hz / spec.f3db_hz))
                + abs(np.log(record.ugf_hz / spec.ugf_hz))
            )

        best = min(self._records[topology_name], key=distance)
        values = {g: dict(p) for g, p in best.device_params.items()}
        return ParsedParams(values=values, complete=True), f"<oracle:{best.gain_db:.3f}>"

    def predict_params_many(self, specs_by_topology, max_len=None):
        return {
            name: [self.predict_params(name, spec, max_len) for spec in specs]
            for name, specs in specs_by_topology.items()
        }


@pytest.fixture(scope="module")
def mixed_oracle_setup():
    """Small measured datasets for both paper topologies plus shared LUTs."""
    from repro.datagen import DesignFilter, generate_dataset
    from repro.devices import NMOS_65NM, PMOS_65NM
    from repro.lut import build_lut

    topologies = {name: topology_by_name(name) for name in ("5T-OTA", "CM-OTA")}
    records_by_name = {}
    for seed, (name, topology) in enumerate(topologies.items(), start=21):
        dataset = generate_dataset(
            topology, 6, np.random.default_rng(seed),
            design_filter=DesignFilter(topology, check_icmr=False),
            max_attempts=400,
        )
        assert len(dataset) >= 3
        records_by_name[name] = dataset.records
    luts = {NMOS_65NM.name: build_lut(NMOS_65NM), PMOS_65NM.name: build_lut(PMOS_65NM)}
    return topologies, records_by_name, luts


class TestBatchedStageIVParity:
    """The tentpole contract: routing Stage IV through ``measure_many``
    changes throughput, never results."""

    def _engines(self, oracle_setup, topology=None):
        setup_topology, records, luts = oracle_setup
        engines = []
        for backend in (ScalarBackend(), BatchedBackend()):
            model = BatchedOracleModel(setup_topology, records, luts)
            engine = SizingEngine(model, cache_size=0, backend=backend)
            engine.adopt_topology(topology if topology is not None else setup_topology)
            engines.append(engine)
        return engines

    def _requests(self, records, **kwargs):
        return [
            SizingRequest.for_spec(
                "5T-OTA",
                r.gain_db * 0.995,
                r.f3db_hz * 0.98,
                r.ugf_hz * 0.98,
                id=f"p-{i}",
                **kwargs,
            )
            for i, r in enumerate(records)
        ]

    def test_round_batched_verification_matches_sequential(self, oracle_setup):
        _, records, _ = oracle_setup
        engine_seq, engine_batched = self._engines(oracle_setup)
        requests = self._requests(records[:4])
        sequential = engine_seq.size_batch(requests)
        batched = engine_batched.size_batch(requests)
        assert_responses_identical(sequential, batched)
        assert engine_seq.stats.spice_simulations == engine_batched.stats.spice_simulations
        # Traces too (size_results exposes them): requested specs, parse
        # flags, widths, metrics and verdicts, iteration by iteration.
        traces_seq = engine_seq.size_results(requests)
        traces_batched = engine_batched.size_results(requests)
        for ref, got in zip(traces_seq, traces_batched, strict=True):
            assert len(ref.trace) == len(got.trace)
            for t_ref, t_got in zip(ref.trace, got.trace, strict=True):
                assert t_ref.requested_spec == t_got.requested_spec
                assert t_ref.parsed_ok == t_got.parsed_ok
                assert t_ref.widths == t_got.widths
                assert t_ref.satisfied == t_got.satisfied

    def test_one_measure_many_call_per_round(self, oracle_setup):
        """All verifiable candidates of a round share one backend call."""
        topology, records, luts = oracle_setup
        model = BatchedOracleModel(topology, records, luts)
        backend = CountingBackend()
        engine = SizingEngine(model, cache_size=0, backend=backend)
        engine.adopt_topology(topology)
        requests = self._requests(records[:4], max_iterations=1)
        engine.size_batch(requests)
        assert backend.calls == [("5T-OTA", 4)]

    def test_poisoned_candidate_inside_a_round_is_isolated(self, oracle_setup):
        """One non-converging design must cost its own request a retry and
        nothing else — identically on both backends."""
        _, records, _ = oracle_setup
        # Learn the deterministic Stage III widths of one request, then
        # poison exactly that design's DC solve.
        _, probe = self._engines(oracle_setup)
        requests = self._requests(records[:3], max_iterations=2)
        probe_response = probe.size_batch([requests[1]])[0]
        assert probe_response.widths is not None
        poisoned_topology = PoisonedFiveT(probe_response.widths["M1"])

        engine_seq, engine_batched = self._engines(oracle_setup, topology=poisoned_topology)
        sequential = engine_seq.size_batch(requests)
        batched = engine_batched.size_batch(requests)
        assert_responses_identical(sequential, batched)
        # The neighbors still verified and sized normally.
        assert batched[0].success and batched[2].success
        # The poisoned first iteration consumed no simulation but the
        # request kept iterating (retry-nudge semantics intact).
        assert batched[1].iterations == 2
        assert batched[1].spice_simulations < batched[1].iterations

    def test_zero_iteration_budget_skips_the_backend(self, oracle_setup):
        topology, records, luts = oracle_setup
        model = BatchedOracleModel(topology, records, luts)
        backend = CountingBackend()
        engine = SizingEngine(model, cache_size=0, backend=backend)
        engine.adopt_topology(topology)
        responses = engine.size_batch(self._requests(records[:2], max_iterations=0))
        assert all(not r.success and r.iterations == 0 for r in responses)
        assert all(r.spice_simulations == 0 for r in responses)
        assert backend.calls == []

    def test_mixed_topology_round_groups_by_topology(self, mixed_oracle_setup):
        """Mixed-topology batches verify per topology, bit-identically to
        the sequential backend."""
        topologies, records_by_name, luts = mixed_oracle_setup
        requests = []
        for name, records in records_by_name.items():
            for i, record in enumerate(records[:3]):
                requests.append(
                    SizingRequest.for_spec(
                        name,
                        record.gain_db * 0.995,
                        record.f3db_hz * 0.98,
                        record.ugf_hz * 0.98,
                        id=f"{name}-{i}",
                        max_iterations=2,
                    )
                )

        def engine(backend):
            model = _MixedOracleModel(topologies.values(), records_by_name, luts)
            eng = SizingEngine(model, cache_size=0, backend=backend)
            for topology in topologies.values():
                eng.adopt_topology(topology)
            return eng

        counting = CountingBackend()
        sequential = engine(ScalarBackend()).size_batch(requests)
        batched = engine(counting).size_batch(requests)
        assert_responses_identical(sequential, batched)
        # Round 1: one bulk verification per topology, spanning all of its
        # surviving candidates (the oracle's decodes all survive Stage III).
        assert counting.calls[:2] == [("5T-OTA", 3), ("CM-OTA", 3)]
        assert {name for name, _ in counting.calls} <= {"5T-OTA", "CM-OTA"}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_topologies_subcommand(self, capsys):
        from repro.service.cli import main

        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "5T-OTA" in out and "CM-OTA" in out and "2S-OTA" in out

    def test_size_jsonl_round_trip(self, tiny_artifacts, tmp_path):
        from repro.service.cli import main

        bundle = tmp_path / "bundle"
        tiny_artifacts.model.save(bundle)
        record = tiny_artifacts.val_records["5T-OTA"][0]
        request = SizingRequest.for_spec(
            "5T-OTA", record.gain_db, record.f3db_hz, record.ugf_hz,
            id="cli-1", max_iterations=1,
        )
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text(
            request.to_json_line() + "\n" + "this is not json\n"
        )
        responses_file = tmp_path / "responses.jsonl"
        exit_code = main([
            "size", "--bundle", str(bundle),
            "-i", str(requests_file), "-o", str(responses_file),
        ])
        lines = responses_file.read_text().splitlines()
        assert len(lines) == 2
        # Every output line — including error lines — parses with the
        # stable response schema.
        response = SizingResponse.from_json_line(lines[0])
        assert response.request_id == "cli-1"
        assert response.iterations == 1
        bad = SizingResponse.from_json_line(lines[1])
        assert bad.success is False and "bad request line" in bad.error
        assert exit_code == 1  # the malformed line is a tool-level failure

    def test_bad_corners_flag_is_a_tool_error(self, capsys):
        from repro.service.cli import main

        # Rejected before the bundle is even opened.
        exit_code = main(["size", "--bundle", "/nonexistent", "--corners", "tt,sf"])
        assert exit_code == 2
        assert "bad --corners" in capsys.readouterr().err
        # An empty override would silently disable per-request corner
        # verification stream-wide; it must be refused the same way.
        exit_code = main(["size", "--bundle", "/nonexistent", "--corners", " , "])
        assert exit_code == 2
        assert "bad --corners" in capsys.readouterr().err

    def test_corners_flag_overrides_requests(self, tiny_artifacts, tmp_path):
        from repro.service.cli import main

        bundle = tmp_path / "bundle"
        tiny_artifacts.model.save(bundle)
        record = tiny_artifacts.val_records["5T-OTA"][0]
        request = SizingRequest.for_spec(
            "5T-OTA", record.gain_db, record.f3db_hz, record.ugf_hz,
            id="cli-c1", max_iterations=1,
        )
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text(request.to_json_line() + "\n")
        responses_file = tmp_path / "responses.jsonl"
        exit_code = main([
            "size", "--bundle", str(bundle), "--corners", "tt,ss",
            "-i", str(requests_file), "-o", str(responses_file),
        ])
        assert exit_code == 0
        response = SizingResponse.from_json_line(responses_file.read_text().splitlines()[0])
        assert response.request_id == "cli-c1"
        # Corner-aware verification: whenever a design was measured, the
        # response reports it per corner with the binding worst corner.
        if response.metrics is not None:
            assert set(response.corner_metrics) == {"tt", "ss"}
            assert response.worst_corner in {"tt", "ss"}
        else:
            assert response.corner_metrics is None

    def test_size_infeasible_spec_is_not_a_tool_failure(self, tiny_artifacts, tmp_path):
        """success=false with error=null must exit 0: the service worked."""
        from repro.service.cli import main

        bundle = tmp_path / "bundle"
        tiny_artifacts.model.save(bundle)
        record = tiny_artifacts.val_records["5T-OTA"][0]
        request = SizingRequest.for_spec(
            "5T-OTA", record.gain_db, record.f3db_hz, record.ugf_hz,
            max_iterations=1,
        )
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text(request.to_json_line() + "\n")
        responses_file = tmp_path / "responses.jsonl"
        exit_code = main([
            "size", "--bundle", str(bundle),
            "-i", str(requests_file), "-o", str(responses_file),
        ])
        response = SizingResponse.from_json_line(responses_file.read_text().splitlines()[0])
        assert response.error is None
        assert exit_code == 0
