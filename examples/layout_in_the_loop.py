"""Layout-in-the-loop parasitic updates without SPICE (Sec. I of the paper).

After a design is sized and verified once, a layout engine's extracted
wiring capacitances only change *passive* values — the DC operating point
is untouched.  The DP-SFG built from the existing operating point can be
re-evaluated with Mason's gain formula for every layout iteration, with no
simulator in the loop.  This example sweeps increasing output-net wiring
capacitance and reports the metric drift, then cross-checks one point
against a full re-simulation.

Usage::

    python examples/layout_in_the_loop.py
"""

from repro.core.layout import ParasiticEstimate, evaluate_with_parasitics
from repro.spice import extract_metrics, run_ac, solve_dc
from repro.topologies import topology_by_name


def main() -> None:
    topology = topology_by_name("5T-OTA")
    widths = {"M1": 1.2e-6, "M3": 15e-6, "M5": 4e-6}
    measurement = topology.measure(widths)  # the ONE verification simulation
    reference = measurement.metrics
    print(f"sized design: gain={reference.gain_db:.2f} dB, "
          f"BW={reference.f3db_hz / 1e6:.2f} MHz, UGF={reference.ugf_hz / 1e6:.1f} MHz")

    print("\nlayout iterations (no SPICE -- Mason on the DP-SFG):")
    print(f"{'wiring C at out':>16s} {'gain [dB]':>10s} {'BW [MHz]':>10s} {'UGF [MHz]':>10s}")
    for extra_ff in (0, 50, 100, 200, 400):
        estimate = ParasiticEstimate(node_caps={"out": extra_ff * 1e-15})
        metrics = evaluate_with_parasitics(topology, measurement, estimate)
        print(f"{extra_ff:>13d} fF {metrics.gain_db:>10.2f} "
              f"{metrics.f3db_hz / 1e6:>10.3f} {metrics.ugf_hz / 1e6:>10.1f}")

    # Cross-check the largest update against a full re-simulation.
    estimate = ParasiticEstimate(node_caps={"out": 400e-15})
    fast = evaluate_with_parasitics(topology, measurement, estimate)
    circuit = measurement.circuit.copy()
    circuit.add_capacitor("CWIRE", "out", "0", 400e-15)
    slow = extract_metrics(run_ac(solve_dc(circuit, initial_guess=topology.initial_guess())), "out")
    print(f"\ncross-check at +400 fF: Mason BW={fast.f3db_hz / 1e6:.3f} MHz "
          f"vs SPICE BW={slow.f3db_hz / 1e6:.3f} MHz")


if __name__ == "__main__":
    main()
