"""Compare SPICE-in-the-loop optimizers on a 5T-OTA sizing task.

Reproduces the qualitative Table IX story quantitatively on one spec
through the unified solver API: the stochastic baselines (SA / PSO / DE)
each need tens to hundreds of SPICE simulations to satisfy the same
specification the trained flow satisfies with one verification
simulation.  Populations are evaluated through the batched backend
(vectorized AC, amortized DC Newton) — identical results, fewer seconds.

Usage::

    python examples/baseline_comparison.py
"""

import numpy as np

from repro import solvers
from repro.core import DesignSpec
from repro.topologies import topology_by_name


def main() -> None:
    topology = topology_by_name("5T-OTA")
    # A moderately demanding spec inside the feasible region.
    reference = topology.measure({"M1": 1.0e-6, "M3": 20e-6, "M5": 5e-6}).metrics
    spec = DesignSpec(reference.gain_db, reference.f3db_hz, reference.ugf_hz)
    print(f"spec: gain >= {spec.gain_db:.1f} dB, BW >= {spec.f3db_hz / 1e6:.2f} MHz, "
          f"UGF >= {spec.ugf_hz / 1e6:.1f} MHz")
    print(f"registered solvers: {', '.join(solvers.available_solvers())}\n")

    print(f"{'solver':10s} {'success':8s} {'SPICE calls':12s} {'time [s]':10s} {'residual':10s}")
    for name in ("sa", "pso", "de"):
        solver = solvers.get(name)(topology)
        result = solver.solve(spec, budget=400, rng=np.random.default_rng(0))
        print(f"{name:10s} {str(result.success):8s} {result.spice_calls:<12d} "
              f"{result.wall_time_s:<10.2f} {result.best_value:<10.4f}")
    print("\nThe trained transformer flow is the registered 'copilot' solver and "
          "satisfies comparable specs with a single verification simulation "
          "(see benchmarks/bench_table9_comparison.py).")


if __name__ == "__main__":
    main()
