"""The sizing service end to end: JSONL requests through the batched engine.

Demonstrates the request/response API introduced by the service redesign:

1. load (or train) a model bundle,
2. build JSON-serializable :class:`SizingRequest` objects — the same
   schema ``python -m repro size`` reads line by line,
3. serve them in one ``engine.size_batch`` call (batched transformer
   decode per topology, LRU-cached results),
4. print the JSONL responses and the engine's serving counters.

Usage::

    python examples/batch_service.py
"""

from pathlib import Path

from repro.core import PipelineConfig, train_sizing_model
from repro.core.pipeline import BENCHMARK_CONFIG
from repro.service import SizingEngine, SizingRequest

CACHE_DIR = Path(__file__).resolve().parent / ".cache"
BENCH_CACHE = Path(__file__).resolve().parent.parent / "benchmarks" / ".artifact_cache"

TOY_CONFIG = PipelineConfig(
    designs_per_topology=(("5T-OTA", 400),),
    epochs=30,
    d_model=64,
    n_heads=4,
    d_ff=128,
    dropout=0.0,
    learning_rate=1e-3,
    num_merges=800,
    encoder_max_paths=1,
    dtype="float32",
    seed=0,
)


def main() -> None:
    if (BENCH_CACHE / BENCHMARK_CONFIG.cache_key() / "bundle.json").exists():
        artifacts = train_sizing_model(BENCHMARK_CONFIG, cache_dir=BENCH_CACHE, log=print)
    else:
        artifacts = train_sizing_model(TOY_CONFIG, cache_dir=CACHE_DIR, log=print)

    engine = SizingEngine(artifacts.model)

    # Specs derated from held-out designs, i.e. known to be achievable.
    records = artifacts.val_records["5T-OTA"][:6]
    requests = [
        SizingRequest.for_spec(
            "5T-OTA", r.gain_db * 0.99, r.f3db_hz * 0.9, r.ugf_hz * 0.9
        )
        for r in records
    ]
    # An exact repeat of requests[0]'s spec: coalesces with its in-batch
    # leader and skips inference entirely.
    requests.append(
        SizingRequest.for_spec(
            "5T-OTA",
            records[0].gain_db * 0.99,
            records[0].f3db_hz * 0.9,
            records[0].ugf_hz * 0.9,
        )
    )

    print("\n== request lines (what `python -m repro size` reads) ==")
    for request in requests:
        print(request.to_json_line())

    responses = engine.size_batch(requests)

    print("\n== response lines ==")
    for response in responses:
        line = response.to_json()
        line.pop("decoded_texts")  # long; omitted for readability
        print(line)

    stats = engine.stats
    print(
        f"\nserved {stats.requests} requests: "
        f"{stats.inference_sequences} decoded sequences in "
        f"{stats.inference_calls} decode call(s) "
        f"({stats.inference_seconds:.2f} s inference), "
        f"{stats.spice_simulations} SPICE simulations, "
        f"{stats.cache_hits} cache hit(s)"
    )


if __name__ == "__main__":
    main()
