"""The paper's Fig. 2 / Fig. 4 running example, end to end.

Builds the active-inductor circuit, derives its DP-SFG, prints the
forward-path and cycle sequences (symbolic and value-substituted, exactly
the two halves of Fig. 4), and cross-checks Mason's gain formula against
the MNA AC analysis.

Usage::

    python examples/active_inductor_dpsfg.py
"""

import numpy as np

from repro.dpsfg import build_dpsfg, enumerate_paths, render_sequences, transfer_function
from repro.spice import run_ac, solve_dc
from repro.topologies import build_active_inductor


def main() -> None:
    circuit = build_active_inductor()
    dc = solve_dc(circuit)
    op = dc.op("M")
    print(f"operating point: Vgs={op.vgs:.3f} V, Vds={op.vds:.3f} V, "
          f"Id={op.small_signal.id * 1e6:.1f} uA, region={op.region}")

    small_signals = {"M": op.small_signal}
    sfg = build_dpsfg(circuit, "1", small_signals)
    inventory = enumerate_paths(sfg)
    print(f"\nDP-SFG: {inventory.n_forward_paths} forward path(s), "
          f"{inventory.n_cycles} cycle(s)")

    print("\nsymbolic sequences (Fig. 4, upper half):")
    for line in render_sequences(sfg, inventory=inventory):
        print("  " + line)

    device_env = {k: v for k, v in sfg.values.items() if k not in ("C", "G")}
    print("\nvalue-substituted sequences (Fig. 4, lower half):")
    for line in render_sequences(sfg, env=device_env, inventory=inventory):
        print("  " + line)

    freqs = np.logspace(5, 10, 11)
    h_mason = transfer_function(sfg, freqs)
    h_mna = run_ac(dc, freqs).transfer("1")
    worst = float(np.max(np.abs(h_mason - h_mna) / np.abs(h_mna)))
    print(f"\nMason vs MNA transfer function: max relative error = {worst:.2e}")

    print("\nport impedance magnitude (the inductive region rises with f):")
    for f, z in zip(freqs, np.abs(h_mason), strict=True):
        print(f"  {f:10.3e} Hz : {z:10.1f} ohm")


if __name__ == "__main__":
    main()
