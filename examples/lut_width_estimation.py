"""Stage III in isolation: LUT characterization and Algorithm 1.

Characterizes NMOS/PMOS lookup tables (Fig. 5), prints a slice of the
gm/Id design chart, and demonstrates the width-estimation round trip:
true width -> device parameters -> recovered width.

Usage::

    python examples/lut_width_estimation.py
"""

import numpy as np

from repro.devices import EKVModel, NMOS_65NM, PMOS_65NM
from repro.lut import DeviceParams, build_lut, estimate_width


def main() -> None:
    print("characterizing LUTs (Wref=700 nm, L=180 nm, 60 mV grid) ...")
    luts = {tech.name: build_lut(tech) for tech in (NMOS_65NM, PMOS_65NM)}

    lut = luts[NMOS_65NM.name]
    print("\ngm/Id versus Vgs at Vds = 0.6 V (NMOS):")
    for vgs in np.arange(0.25, 0.95, 0.1):
        print(f"  Vgs={vgs:.2f} V : gm/Id = {float(lut.gm_over_id(vgs, 0.6)):6.2f} 1/V")

    print("\nAlgorithm 1 round trip (NMOS):")
    model = EKVModel(NMOS_65NM)
    rng = np.random.default_rng(0)
    print(f"  {'true W':>10s} {'Vgs':>6s} {'Vds':>6s} {'estimated W':>12s} {'error':>8s}")
    for _ in range(8):
        width = float(rng.uniform(1e-6, 40e-6))
        vgs = float(rng.uniform(0.35, 0.8))
        vds = float(rng.uniform(0.25, 1.0))
        values = model.evaluate_all(vgs, vds, width, 180e-9)
        params = DeviceParams(
            gm=float(values["gm"]),
            gds=float(values["gds"]),
            cds=float(values["cds"]),
            cgs=float(values["cgs"]),
            id=float(values["id"]),
        )
        estimate = estimate_width(params, lut)
        error = abs(estimate.width - width) / width
        print(f"  {width * 1e6:8.2f}um {vgs:6.2f} {vds:6.2f} "
              f"{estimate.width * 1e6:10.2f}um {100 * error:7.3f}%")


if __name__ == "__main__":
    main()
