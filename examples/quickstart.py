"""Quickstart: train a small sizing model and size a 5T-OTA.

Runs the whole paper pipeline end to end at toy scale (a few minutes on a
laptop CPU):

1. generate a labeled 5T-OTA dataset through the SPICE substrate,
2. tokenize DP-SFG sequences and train the transformer,
3. build the precomputed LUTs,
4. size an unseen specification and verify it with one simulation.

Usage::

    python examples/quickstart.py
"""

from pathlib import Path

from repro.core import DesignSpec, PipelineConfig, train_sizing_model
from repro.service import SizingEngine, SizingRequest

CACHE_DIR = Path(__file__).resolve().parent / ".cache"


def main() -> None:
    config = PipelineConfig(
        designs_per_topology=(("5T-OTA", 400),),
        epochs=30,
        d_model=64,
        n_heads=4,
        d_ff=128,
        dropout=0.0,
        learning_rate=1e-3,
        num_merges=800,
        encoder_max_paths=1,
        dtype="float32",
        seed=0,
    )
    # Prefer the benchmark-suite artifact when it has already been built
    # (scripts/build_bench_artifact.py) -- it is a stronger model and loads
    # instantly; otherwise train the toy configuration above (~3 minutes).
    from repro.core.pipeline import BENCHMARK_CONFIG

    bench_cache = Path(__file__).resolve().parent.parent / "benchmarks" / ".artifact_cache"
    print("== one-time training phase (cached) ==")
    if (bench_cache / BENCHMARK_CONFIG.cache_key() / "bundle.json").exists():
        artifacts = train_sizing_model(BENCHMARK_CONFIG, cache_dir=bench_cache, log=print)
    else:
        artifacts = train_sizing_model(config, cache_dir=CACHE_DIR, log=print)

    engine = SizingEngine(artifacts.model)

    # Ask for slightly less than a held-out validation design achieves: a
    # specification the model has never seen but that is known to be
    # comfortably achievable (a designer would also specify with margin).
    # Use the most typical held-out design -- the one closest to the
    # median bandwidth/UGF -- so the toy-scale model is well inside its
    # training distribution.
    import numpy as np

    candidates = artifacts.val_records["5T-OTA"]
    med_bw = np.median([r.f3db_hz for r in candidates])
    med_ugf = np.median([r.ugf_hz for r in candidates])
    record = min(
        candidates,
        key=lambda r: abs(np.log(r.f3db_hz / med_bw)) + abs(np.log(r.ugf_hz / med_ugf)),
    )
    spec = DesignSpec(record.gain_db * 0.99, record.f3db_hz * 0.9, record.ugf_hz * 0.9)
    print("\n== inference phase ==")
    print(f"target spec: gain >= {spec.gain_db:.1f} dB, "
          f"BW >= {spec.f3db_hz / 1e6:.2f} MHz, UGF >= {spec.ugf_hz / 1e6:.1f} MHz")

    result = engine.size(SizingRequest(topology="5T-OTA", spec=spec))
    print(f"success={result.success} after {result.iterations} iteration(s), "
          f"{result.spice_simulations} verification SPICE simulation(s), "
          f"{result.wall_time_s:.2f} s")
    if result.widths:
        print("widths:", {k: f"{v * 1e6:.2f} um" for k, v in result.widths.items()})
    if result.metrics:
        m = result.metrics
        print(f"achieved: gain={m.gain_db:.1f} dB, BW={m.f3db_hz / 1e6:.2f} MHz, "
              f"UGF={m.ugf_hz / 1e6:.1f} MHz")

    # The engine really shines on batches: inference for every request of
    # one topology runs in a single padded transformer decode.
    print("\n== batched sizing (engine.size_batch) ==")
    batch = [
        SizingRequest.for_spec(
            "5T-OTA", r.gain_db * 0.99, r.f3db_hz * 0.9, r.ugf_hz * 0.9
        )
        for r in candidates[:8]
    ]
    responses = engine.size_batch(batch)
    successes = sum(r.success for r in responses)
    stats = engine.stats
    print(f"{successes}/{len(batch)} specs met; "
          f"{stats.inference_sequences} decoded sequences in "
          f"{stats.inference_calls} batched decode call(s), "
          f"{stats.inference_seconds:.2f} s inference, "
          f"{stats.spice_simulations} SPICE simulations, "
          f"{stats.cache_hits} cache hits")


if __name__ == "__main__":
    main()
