"""Regenerate the golden transient traces under tests/golden/.

Run after an *intentional* change to the transient engine or the device
models, then review the waveform diff before committing::

    PYTHONPATH=src python scripts/build_golden_traces.py

The fixture pins, for every registered topology at the nominal corner,
the step response of the known-good design from ``tests/conftest.py``:
a downsampled output waveform at full float precision plus the derived
transient metrics.  ``tests/test_tran.py`` diffs future solver/stamp
refactors against these known-good waveforms.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

#: Keep every Nth sample (plus the final one) so the fixture stays small.
SAMPLE_EVERY = 5


def main() -> None:
    from repro.topologies import available_topologies, topology_by_name
    from tests.conftest import GOOD_WIDTHS

    golden: dict[str, dict] = {}
    for name in available_topologies():
        topology = topology_by_name(name)
        widths = GOOD_WIDTHS[name]
        measurement = topology.measure(widths, analyses=("dc", "ac", "tran"))
        tran = measurement.tran
        keep = sorted(set(range(0, len(tran.times), SAMPLE_EVERY)) | {len(tran.times) - 1})
        metrics = measurement.metrics
        golden[name] = {
            "widths": widths,
            "t_stop": topology.tran_t_stop,
            "n_steps": topology.tran_steps,
            "method": topology.tran_method,
            "step_amplitude": topology.tran_step_v,
            "output_node": topology.output_node,
            "sample_indices": keep,
            "times": [tran.times[i] for i in keep],
            "output": [float(tran.voltage(topology.output_node)[i]) for i in keep],
            "metrics": {
                "slew_v_per_s": metrics.slew_v_per_s,
                "settling_time_s": metrics.settling_time_s,
                "overshoot_frac": metrics.overshoot_frac,
            },
        }

    out = REPO / "tests" / "golden" / "tran_traces.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(golden)} topologies)")


if __name__ == "__main__":
    main()
