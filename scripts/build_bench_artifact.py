"""Pre-build the cached sizing-model artifact used by the benchmark suite.

Running this script is optional -- the benchmarks train (and cache) the
same artifact on first use -- but doing it ahead of time keeps the first
``pytest benchmarks/`` invocation fast.

``--bench-smoke`` runs the model-free smoke benches instead (the
round-batched verification, stacked-corner, transient and
serve-throughput modes) -- no training, minutes-free -- so the per-PR
``BENCH_*.json`` perf snapshots can be regenerated in one command:

    PYTHONPATH=src python scripts/build_bench_artifact.py --bench-smoke
"""
import argparse
import sys
import time
from pathlib import Path

CACHE_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / ".artifact_cache"
BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

#: The model-free smoke selection: each of these emits a ``BENCH_*.json``
#: snapshot at the repo root on top of its parity/speedup assertions.
SMOKE_ARGS = [
    str(BENCH_DIR / "bench_table8_runtime.py"),
    str(BENCH_DIR / "bench_serve_throughput.py"),
    "-k",
    "verification_throughput or corner_throughput or tran_throughput "
    "or serve_throughput",
    "-q",
]


def run_bench_smoke() -> int:
    import pytest

    return pytest.main(SMOKE_ARGS)


def build_artifact() -> int:
    from repro.core.pipeline import BENCHMARK_CONFIG, train_sizing_model

    start = time.time()
    artifacts = train_sizing_model(
        BENCHMARK_CONFIG, cache_dir=CACHE_DIR, log=lambda m: print(m, flush=True)
    )
    history = artifacts.history_val_accuracy
    val_acc = history[-1] if history else float("nan")
    print(f"done in {time.time() - start:.0f}s; val acc {val_acc:.3f}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-smoke",
        action="store_true",
        help="run the model-free smoke benches (emits BENCH_*.json snapshots) "
        "instead of training the artifact",
    )
    args = parser.parse_args()
    if args.bench_smoke:
        return run_bench_smoke()
    return build_artifact()


if __name__ == "__main__":
    sys.exit(main())
