"""Pre-build the cached sizing-model artifact used by the benchmark suite.

Running this script is optional -- the benchmarks train (and cache) the
same artifact on first use -- but doing it ahead of time keeps the first
``pytest benchmarks/`` invocation fast.
"""
import sys
import time
from pathlib import Path

from repro.core.pipeline import BENCHMARK_CONFIG, train_sizing_model

CACHE_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / ".artifact_cache"


def main() -> None:
    start = time.time()
    artifacts = train_sizing_model(
        BENCHMARK_CONFIG, cache_dir=CACHE_DIR, log=lambda m: print(m, flush=True)
    )
    print(f"done in {time.time() - start:.0f}s; "
          f"val acc {artifacts.history_val_accuracy[-1] if artifacts.history_val_accuracy else float('nan'):.3f}")


if __name__ == "__main__":
    sys.exit(main())
