"""Command-line OTA sizing against a trained model bundle.

Examples::

    # use the benchmark artifact cache (train it first if absent)
    python scripts/size_ota.py --topology 5T-OTA \\
        --gain-db 25 --bw-mhz 5 --ugf-mhz 80

    # use a specific saved bundle directory
    python scripts/size_ota.py --bundle path/to/bundle --topology CM-OTA \\
        --gain-db 24 --bw-mhz 15 --ugf-mhz 250
"""

import argparse
import sys
from pathlib import Path

from repro.core import DesignSpec, SizingFlow, SizingModel
from repro.core.pipeline import BENCHMARK_CONFIG, train_sizing_model
from repro.topologies import topology_by_name

DEFAULT_CACHE = Path(__file__).resolve().parent.parent / "benchmarks" / ".artifact_cache"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Size an OTA with the trained transformer+LUT flow")
    parser.add_argument("--topology", required=True, choices=["5T-OTA", "CM-OTA", "2S-OTA"])
    parser.add_argument("--gain-db", type=float, required=True, help="minimum gain in dB")
    parser.add_argument("--bw-mhz", type=float, required=True, help="minimum 3dB bandwidth in MHz")
    parser.add_argument("--ugf-mhz", type=float, required=True, help="minimum unity-gain frequency in MHz")
    parser.add_argument("--bundle", type=Path, default=None, help="saved SizingModel directory")
    parser.add_argument("--max-iterations", type=int, default=6, help="copilot iteration cap")
    parser.add_argument("--spice-out", type=Path, default=None,
                        help="write the fully sized netlist as a SPICE deck")
    args = parser.parse_args(argv)

    if args.bundle is not None:
        model = SizingModel.load(args.bundle)
    else:
        print("loading (or training) the benchmark artifact ...", file=sys.stderr)
        model = train_sizing_model(BENCHMARK_CONFIG, cache_dir=DEFAULT_CACHE).model

    topology = topology_by_name(args.topology)
    flow = SizingFlow(topology, model)
    spec = DesignSpec(args.gain_db, args.bw_mhz * 1e6, args.ugf_mhz * 1e6)
    result = flow.size(spec, max_iterations=args.max_iterations)

    print(f"success: {result.success}  iterations: {result.iterations}  "
          f"SPICE simulations: {result.spice_simulations}  time: {result.wall_time_s:.2f}s")
    if result.widths:
        for group, width in result.widths.items():
            devices = ",".join(topology.group(group).devices)
            print(f"  W({devices}) = {width * 1e6:.3f} um")
    if result.metrics:
        m = result.metrics
        print(f"achieved: gain={m.gain_db:.2f} dB  BW={m.f3db_hz / 1e6:.3f} MHz  "
              f"UGF={m.ugf_hz / 1e6:.1f} MHz")
    if args.spice_out is not None and result.widths:
        from repro.spice import to_spice

        deck = to_spice(topology.build(result.widths), title=f"sized {args.topology}")
        args.spice_out.write_text(deck)
        print(f"wrote SPICE deck to {args.spice_out}")
    return 0 if result.success else 1


if __name__ == "__main__":
    sys.exit(main())
