"""Table IV: correlation coefficients for the CM-OTA.

Pearson correlation between transformer-predicted device parameters and
the simulation-based validation values, per matched device group -- our
version of the paper's Table IV.  The benchmarked operation is the
correlation computation over the cached prediction set.
"""

import numpy as np

from conftest import write_result
from _tables import correlation_lines, mean_abs_corr


def test_table4_correlations_cm(benchmark, topologies, predictions):
    topology = topologies["CM-OTA"]
    prediction_set = predictions.get("CM-OTA")
    lines, table = correlation_lines(
        "Table IV -- CM-OTA correlation coefficients (ours vs paper)",
        topology,
        prediction_set,
    )
    write_result("table4_corr_cm", lines)

    # Shape: predictions must correlate positively overall; the dominant
    # differential-pair gm is the paper's strongest row.
    assert mean_abs_corr(table) > 0.3
    dp_gm = table["M3"]["gm"]
    assert dp_gm > 0.4

    desired, predicted = prediction_set.arrays("M3", "gm")
    benchmark(lambda: np.corrcoef(desired, predicted)[0, 1])
