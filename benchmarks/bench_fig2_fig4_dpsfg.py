"""Fig. 2 / Fig. 4: active-inductor DP-SFG structure and sequences.

Regenerates the paper's running example: the driving-point impedances of
Eq. (2), the forward-path/cycle sequences, and the value-substituted
variant.  The benchmarked operation is one Mason transfer-function
evaluation on the graph.
"""

import numpy as np

from repro.dpsfg import MasonEvaluator, build_dpsfg, enumerate_paths, render_sequences
from repro.spice import run_ac, solve_dc
from repro.topologies import build_active_inductor

from conftest import write_result


def test_fig2_fig4_active_inductor(benchmark):
    circuit = build_active_inductor()
    dc = solve_dc(circuit)
    sfg = build_dpsfg(circuit, "1", {"M": dc.op("M").small_signal})
    inventory = enumerate_paths(sfg)

    lines = ["Fig. 2/4 -- active inductor DP-SFG", ""]
    lines.append(f"forward paths: {inventory.n_forward_paths}   cycles: {inventory.n_cycles}")
    lines.append("")
    lines.append("symbolic sequences (Fig. 4 upper half):")
    lines += ["  " + s for s in render_sequences(sfg, inventory=inventory)]
    env = {k: v for k, v in sfg.values.items() if k not in ("C", "G")}
    lines.append("value-substituted sequences (Fig. 4 lower half):")
    lines += ["  " + s for s in render_sequences(sfg, env=env, inventory=inventory)]

    freqs = np.logspace(5, 10, 21)
    evaluator = MasonEvaluator(sfg)
    h_mason = np.array([evaluator.transfer(2j * np.pi * f) for f in freqs])
    h_mna = run_ac(dc, freqs).transfer("1")
    worst = float(np.max(np.abs(h_mason - h_mna) / np.abs(h_mna)))
    lines.append("")
    lines.append(f"Mason vs MNA max relative error: {worst:.2e}")
    write_result("fig2_fig4_dpsfg", lines)

    assert inventory.n_cycles == 2
    assert worst < 1e-9

    benchmark(lambda: evaluator.transfer(2j * np.pi * 1e8))
