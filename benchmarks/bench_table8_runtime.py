"""Table VIII: runtime and success-rate analysis of the sizing flow.

Success is counted within a 1% relative tolerance on each metric: our
substrate's 5T/CM gain spans only ~1.6 dB across the whole design space
(vs the paper's 5 dB), so sub-percent gain prediction errors are
physically uncorrectable by sizing and would mask the flow statistics the
table is about.

Sizes a batch of unseen specifications per topology and reports the
paper's Table VIII columns: one-time training duration, designs optimized
with a single verification simulation vs multiple copilot iterations,
average times and average iteration counts.  Absolute times differ from
the paper (CPU numpy vs GPU PyTorch; MNA substrate vs Spectre); the shape
to check is the high single-simulation success fraction and the small
iteration counts of the remainder.

``test_table8_batched_inference_throughput`` additionally reports the
before/after number of the service redesign: inference-stage throughput
of ``SizingEngine.size_batch`` over a mixed-topology batch vs the
sequential ``SizingFlow.size`` path, with decoded texts pinned
bit-identical between the two.
"""

from repro.core import DesignSpec, SizingFlow, run_sizing_study
from repro.service import SizingEngine, SizingRequest

from conftest import write_result

#: Unseen designs sized per topology (the paper uses 100).
N_SPECS = 25

#: Mixed-topology batch size of the throughput comparison.
N_BATCH_PER_TOPOLOGY = 11

PAPER_ROWS = {
    "5T-OTA": "paper: 8.5h train | 95/100 single (37s) | 5/100 multi (111s, ~3 iters)",
    "CM-OTA": "paper: 22h train | 98/100 single (46s) | 2/100 multi (230s, ~5 iters)",
    "2S-OTA": "paper: 11h train | 90/100 single (36s) | 10/100 multi (180s, ~5 iters)",
}


def test_table8_runtime_analysis(benchmark, artifact, topologies):
    lines = [
        "Table VIII -- runtime analysis (ours vs paper)",
        "",
        f"one-time training duration: {artifact.training_seconds:.0f} s "
        f"(all topologies, single model)",
        "",
        f"{'topology':8s} {'#single':>8s} {'avg t [s]':>10s} {'#multi':>7s} "
        f"{'avg t [s]':>10s} {'avg iters':>10s} {'#fail':>6s}",
    ]
    overall_success = 0
    overall_total = 0
    studies = {}
    for name, topology in topologies.items():
        flow = SizingFlow(topology, artifact.model)
        specs = [
            DesignSpec(r.gain_db, r.f3db_hz, r.ugf_hz)
            for r in artifact.val_records[name][:N_SPECS]
        ]
        study = run_sizing_study(flow, specs, max_iterations=6, rel_tol=0.01)
        studies[name] = study
        lines.append(
            f"{name:8s} {study.single_iteration_successes:>8d} "
            f"{study.average_time(multi_only=False):>10.2f} "
            f"{study.multi_iteration_successes:>7d} "
            f"{study.average_time(multi_only=True):>10.2f} "
            f"{study.average_iterations_multi():>10.1f} {study.failures:>6d}"
        )
        lines.append(f"{'':8s} {PAPER_ROWS[name]}")
        overall_success += study.total - study.failures
        overall_total += study.total
    lines.append("")
    lines.append(
        f"overall success: {overall_success}/{overall_total} "
        f"({100 * overall_success / overall_total:.0f}%)"
    )
    write_result("table8_runtime", lines)

    # Shape: the flow must size the large majority of specs, and most
    # successes must need exactly one verification simulation.
    assert overall_success / overall_total >= 0.4
    singles = sum(s.single_iteration_successes for s in studies.values())
    assert singles >= overall_success * 0.5

    flow = SizingFlow(topologies["5T-OTA"], artifact.model)
    record = artifact.val_records["5T-OTA"][0]
    spec = DesignSpec(record.gain_db, record.f3db_hz, record.ugf_hz)
    benchmark.pedantic(lambda: flow.size(spec), rounds=1, iterations=1)


def test_table8_batched_inference_throughput(artifact, topologies):
    """Before/after of the service redesign: sequential ``SizingFlow.size``
    vs ``SizingEngine.size_batch`` over a mixed-topology batch.

    Both paths run the identical copilot loop (the parity assertion pins
    bit-identical decoded texts per iteration), so the comparison isolates
    the batching of Stage I/II inference.
    """
    # ------------------------------------------------------------------
    # Before: the sequential path, one spec at a time.
    requests = []
    for name in topologies:
        # Unseen specs first; top up from training records when the
        # validation split is small (the tiny smoke profile).
        records = list(artifact.val_records[name]) + list(artifact.train_records[name])
        for record in records[:N_BATCH_PER_TOPOLOGY]:
            requests.append(
                SizingRequest.for_spec(
                    name, record.gain_db, record.f3db_hz, record.ugf_hz, rel_tol=0.01
                )
            )
    assert len(requests) >= 32

    flows = {name: SizingFlow(topology, artifact.model) for name, topology in topologies.items()}
    sequential_results = [
        flows[request.topology].size(
            request.spec, max_iterations=request.max_iterations, rel_tol=request.rel_tol
        )
        for request in requests
    ]
    sequential_inference_s = sum(
        flow._engine.stats.inference_seconds for flow in flows.values()
    )

    # ------------------------------------------------------------------
    # After: one batched engine call (cache off for an honest comparison).
    engine = SizingEngine(artifact.model, cache_size=0)
    for topology in topologies.values():
        engine.adopt_topology(topology)
    responses = engine.size_batch(requests)
    batched_inference_s = engine.stats.inference_seconds

    # Parity: bit-identical decoded parameter texts, iteration by iteration
    # (relies on per-row reduction-order stability of numpy's BLAS across
    # batch shapes; see the note on TestBatchedDecodeParity in
    # tests/test_service.py).
    for result, response in zip(sequential_results, responses):
        sequential_texts = [t.decoded_text for t in result.trace]
        assert sequential_texts == list(response.decoded_texts)
        assert result.widths == response.widths
        assert result.success == response.success

    sequences = engine.stats.inference_sequences
    speedup = sequential_inference_s / batched_inference_s
    lines = [
        "Table VIII addendum -- batched inference throughput (service redesign)",
        "",
        f"mixed-topology batch: {len(requests)} requests "
        f"({N_BATCH_PER_TOPOLOGY} per topology), {sequences} decoded sequences",
        f"sequential SizingFlow.size inference stage: {sequential_inference_s:8.2f} s "
        f"({sequences / sequential_inference_s:6.2f} seq/s)",
        f"batched engine.size_batch inference stage:  {batched_inference_s:8.2f} s "
        f"({sequences / batched_inference_s:6.2f} seq/s)",
        f"inference-stage speedup: {speedup:.1f}x",
        "decoded parameter texts: bit-identical to the sequential path",
    ]
    write_result("table8_batched_throughput", lines)

    assert speedup >= 3.0
