"""Table VIII: runtime and success-rate analysis of the sizing flow.

Success is counted within a 1% relative tolerance on each metric: our
substrate's 5T/CM gain spans only ~1.6 dB across the whole design space
(vs the paper's 5 dB), so sub-percent gain prediction errors are
physically uncorrectable by sizing and would mask the flow statistics the
table is about.

Sizes a batch of unseen specifications per topology and reports the
paper's Table VIII columns: one-time training duration, designs optimized
with a single verification simulation vs multiple copilot iterations,
average times and average iteration counts.  Absolute times differ from
the paper (CPU numpy vs GPU PyTorch; MNA substrate vs Spectre); the shape
to check is the high single-simulation success fraction and the small
iteration counts of the remainder.

``test_table8_batched_inference_throughput`` additionally reports the
before/after number of the service redesign: inference-stage throughput
of ``SizingEngine.size_batch`` over a mixed-topology batch vs the
sequential ``SizingFlow.size`` path, with decoded texts pinned
bit-identical between the two.

``test_table8_verification_throughput`` is the Stage IV counterpart (and
the CI smoke of the round-batched verification path): one multi-request
copilot round verified through the engine's batched backend (one
``measure_many`` per topology per round) vs the sequential per-candidate
backend, responses pinned bit-identical.  It needs no trained model — a
measured-oracle stand-in drives the round — so it stays minutes-free.

``test_table8_corner_throughput`` benchmarks the corner-aware evaluation
refactor (also model-free, also a CI smoke): a population evaluated at
the tt/ss/ff PVT corners through the stacked-corner batched path (the
population x corner block shares one DC Newton batch and one stacked AC
factorization) vs per-corner sequential evaluation, outcomes pinned
bit-identical per (candidate, corner) pair and >=2x asserted.

``test_table8_tran_throughput`` benchmarks the batched transient engine
(model-free, CI smoke): a population's step responses integrated through
``run_tran_many`` (candidate-vectorized Newton per time step, one
stacked linear solve per iteration) vs the per-candidate sequential
``run_tran`` loop, waveforms pinned bit-identical and >=2x asserted.

``test_table8_solver_scaling`` is the node-count scaling mode of the
pluggable linear-solve layer (model-free, CI smoke): a synthetic RC
ladder grown across MNA sizes, the same DC + AC workload solved once
with the dense backend and once with the sparse backend
(``repro.spice.use_backend``), solutions pinned to machine-precision
parity, and the dense->sparse speedup at the largest size asserted
against a >=2x floor and snapshotted to ``BENCH_scaling.json``.
"""

import time

import numpy as np

from repro.core import DesignSpec, SizingFlow, run_sizing_study
from repro.service import SizingEngine, SizingRequest
from repro.solvers import BatchedBackend, EvalBackend, ScalarBackend, SearchSpace

from conftest import write_bench_json, write_result

#: Unseen designs sized per topology (the paper uses 100).
N_SPECS = 25

#: Mixed-topology batch size of the throughput comparison.
N_BATCH_PER_TOPOLOGY = 11

#: Requests per round in the verification-throughput comparison (a busy
#: serving round; matches bench_table9's population scale).
N_VERIFY_ROUND = 24
VERIFY_REPEATS = 3

#: Population and repeats of the corner-throughput comparison.
N_CORNER_POP = 16
CORNER_REPEATS = 3
#: PVT corner axis of the corner-throughput comparison.
CORNER_AXIS = ("tt", "ss", "ff")

#: Population and repeats of the transient-throughput comparison.
N_TRAN_POP = 12
TRAN_REPEATS = 3

#: MNA sizes (nodes + sources) of the solver-scaling comparison.  The
#: largest is where the sparse backend must clear the 2x floor; the
#: smallest sits below ``SPARSE_MIN_SIZE`` territory where dense wins,
#: which is exactly why the auto policy exists.
SCALING_SIZES = (40, 120, 480)
SCALING_BATCH = 8
SCALING_REPEATS = 3
SCALING_FREQS = 24
SCALING_SPEEDUP_FLOOR = 2.0

PAPER_ROWS = {
    "5T-OTA": "paper: 8.5h train | 95/100 single (37s) | 5/100 multi (111s, ~3 iters)",
    "CM-OTA": "paper: 22h train | 98/100 single (46s) | 2/100 multi (230s, ~5 iters)",
    "2S-OTA": "paper: 11h train | 90/100 single (36s) | 10/100 multi (180s, ~5 iters)",
}


def test_table8_runtime_analysis(benchmark, artifact, topologies):
    lines = [
        "Table VIII -- runtime analysis (ours vs paper)",
        "",
        f"one-time training duration: {artifact.training_seconds:.0f} s "
        f"(all topologies, single model)",
        "",
        f"{'topology':8s} {'#single':>8s} {'avg t [s]':>10s} {'#multi':>7s} "
        f"{'avg t [s]':>10s} {'avg iters':>10s} {'#fail':>6s}",
    ]
    overall_success = 0
    overall_total = 0
    studies = {}
    for name, topology in topologies.items():
        flow = SizingFlow(topology, artifact.model)
        specs = [
            DesignSpec(r.gain_db, r.f3db_hz, r.ugf_hz)
            for r in artifact.val_records[name][:N_SPECS]
        ]
        study = run_sizing_study(flow, specs, max_iterations=6, rel_tol=0.01)
        studies[name] = study
        lines.append(
            f"{name:8s} {study.single_iteration_successes:>8d} "
            f"{study.average_time(multi_only=False):>10.2f} "
            f"{study.multi_iteration_successes:>7d} "
            f"{study.average_time(multi_only=True):>10.2f} "
            f"{study.average_iterations_multi():>10.1f} {study.failures:>6d}"
        )
        lines.append(f"{'':8s} {PAPER_ROWS[name]}")
        overall_success += study.total - study.failures
        overall_total += study.total
    lines.append("")
    lines.append(
        f"overall success: {overall_success}/{overall_total} "
        f"({100 * overall_success / overall_total:.0f}%)"
    )
    write_result("table8_runtime", lines)

    # Shape: the flow must size the large majority of specs, and most
    # successes must need exactly one verification simulation.
    assert overall_success / overall_total >= 0.4
    singles = sum(s.single_iteration_successes for s in studies.values())
    assert singles >= overall_success * 0.5

    flow = SizingFlow(topologies["5T-OTA"], artifact.model)
    record = artifact.val_records["5T-OTA"][0]
    spec = DesignSpec(record.gain_db, record.f3db_hz, record.ugf_hz)
    benchmark.pedantic(lambda: flow.size(spec), rounds=1, iterations=1)


def test_table8_batched_inference_throughput(artifact, topologies):
    """Before/after of the service redesign: sequential ``SizingFlow.size``
    vs ``SizingEngine.size_batch`` over a mixed-topology batch.

    Both paths run the identical copilot loop (the parity assertion pins
    bit-identical decoded texts per iteration), so the comparison isolates
    the batching of Stage I/II inference.
    """
    # ------------------------------------------------------------------
    # Before: the sequential path, one spec at a time.
    requests = []
    for name in topologies:
        # Unseen specs first; top up from training records when the
        # validation split is small (the tiny smoke profile).
        records = list(artifact.val_records[name]) + list(artifact.train_records[name])
        for record in records[:N_BATCH_PER_TOPOLOGY]:
            requests.append(
                SizingRequest.for_spec(
                    name, record.gain_db, record.f3db_hz, record.ugf_hz, rel_tol=0.01
                )
            )
    assert len(requests) >= 32

    flows = {name: SizingFlow(topology, artifact.model) for name, topology in topologies.items()}
    sequential_results = [
        flows[request.topology].size(
            request.spec, max_iterations=request.max_iterations, rel_tol=request.rel_tol
        )
        for request in requests
    ]
    sequential_inference_s = sum(
        flow._engine.stats.inference_seconds for flow in flows.values()
    )

    # ------------------------------------------------------------------
    # After: one batched engine call (cache off for an honest comparison).
    engine = SizingEngine(artifact.model, cache_size=0)
    for topology in topologies.values():
        engine.adopt_topology(topology)
    responses = engine.size_batch(requests)
    batched_inference_s = engine.stats.inference_seconds

    # Parity: bit-identical decoded parameter texts, iteration by iteration
    # (relies on per-row reduction-order stability of numpy's BLAS across
    # batch shapes; see the note on TestBatchedDecodeParity in
    # tests/test_service.py).
    for result, response in zip(sequential_results, responses, strict=True):
        sequential_texts = [t.decoded_text for t in result.trace]
        assert sequential_texts == list(response.decoded_texts)
        assert result.widths == response.widths
        assert result.success == response.success

    sequences = engine.stats.inference_sequences
    speedup = sequential_inference_s / batched_inference_s
    lines = [
        "Table VIII addendum -- batched inference throughput (service redesign)",
        "",
        f"mixed-topology batch: {len(requests)} requests "
        f"({N_BATCH_PER_TOPOLOGY} per topology), {sequences} decoded sequences",
        f"sequential SizingFlow.size inference stage: {sequential_inference_s:8.2f} s "
        f"({sequences / sequential_inference_s:6.2f} seq/s)",
        f"batched engine.size_batch inference stage:  {batched_inference_s:8.2f} s "
        f"({sequences / batched_inference_s:6.2f} seq/s)",
        f"inference-stage speedup: {speedup:.1f}x",
        "decoded parameter texts: bit-identical to the sequential path",
    ]
    write_result("table8_batched_throughput", lines)

    assert speedup >= 3.0


# ----------------------------------------------------------------------
# Stage IV verification throughput (round-batched vs sequential backend)
# ----------------------------------------------------------------------
class _TimedBackend(EvalBackend):
    """Wraps a backend and accounts its bulk-verification wall time."""

    def __init__(self, inner):
        self.inner = inner
        self.seconds = 0.0
        self.calls = 0
        self.candidates = 0

    def measure_many(self, topology, widths_list):
        start = time.perf_counter()
        outcomes = self.inner.measure_many(topology, widths_list)
        self.seconds += time.perf_counter() - start
        self.calls += 1
        self.candidates += len(widths_list)
        return outcomes


def _measured_oracle(topology, count, rng):
    """A model-free 'perfect transformer' stand-in: per-spec device
    parameters measured from real random designs of the topology."""
    from repro.core.bundle import SizingModel
    from repro.datagen import SequenceBuilder, SequenceConfig
    from repro.datagen.serialize import ParsedParams
    from repro.spice import ConvergenceError

    space = SearchSpace(topology)
    params_by_spec = {}
    attempts = 0
    while len(params_by_spec) < count and attempts < count * 20:
        attempts += 1
        widths = space.decode(space.random_point(rng))
        try:
            measurement = topology.measure(widths)
        except ConvergenceError:
            continue
        metrics = measurement.metrics
        if not metrics.is_valid():
            continue
        spec = DesignSpec.from_metrics(metrics, slack=0.05)
        params_by_spec[spec] = {
            group.name: dict(measurement.device_params[group.name])
            for group in topology.groups
        }
    assert len(params_by_spec) >= count // 2, "too few simulatable designs"

    class _Oracle(SizingModel):
        def __init__(self):
            builder = SequenceBuilder(topology, SequenceConfig())
            super().__init__(
                transformer=None, bpe=None, vocab=None,
                sequence_config=builder.config,
                builders={topology.name: builder},
                luts=_oracle_luts(),
            )

        def predict_params(self, topology_name, spec, max_len=None):
            values = {g: dict(p) for g, p in params_by_spec[spec].items()}
            return ParsedParams(values=values, complete=True), f"<oracle:{spec.gain_db:.4f}>"

        def predict_params_many(self, specs_by_topology, max_len=None):
            return {
                name: [self.predict_params(name, spec, max_len) for spec in specs]
                for name, specs in specs_by_topology.items()
            }

    return _Oracle(), list(params_by_spec)


def _oracle_luts():
    from repro.devices import NMOS_65NM, PMOS_65NM
    from repro.lut import build_lut

    return {NMOS_65NM.name: build_lut(NMOS_65NM), PMOS_65NM.name: build_lut(PMOS_65NM)}


def test_table8_verification_throughput(topologies):
    """Round-batched Stage IV vs the sequential verification backend:
    bit-identical responses, >=2x wall-clock on a multi-request round.

    The engine round is driven by a measured-oracle model (no training),
    so the timed difference isolates the verification stage: one
    ``measure_many`` over the round's candidates vs one ``measure`` per
    candidate through the same engine code path.
    """
    topology = topologies["5T-OTA"]
    model, specs = _measured_oracle(topology, N_VERIFY_ROUND, np.random.default_rng(17))
    requests = [
        SizingRequest(topology=topology.name, spec=spec, id=f"verify-{i}", max_iterations=1)
        for i, spec in enumerate(specs)
    ]

    def run(inner_backend):
        backend = _TimedBackend(inner_backend)
        engine = SizingEngine(model, cache_size=0, backend=backend)
        engine.adopt_topology(topology)
        return engine.size_batch(requests), backend

    # Warm both paths (imports, first-touch allocations).
    run(ScalarBackend())
    run(BatchedBackend())

    scalar_s, batched_s = float("inf"), float("inf")
    for _ in range(VERIFY_REPEATS):
        scalar_responses, scalar_backend = run(ScalarBackend())
        scalar_s = min(scalar_s, scalar_backend.seconds)
        batched_responses, batched_backend = run(BatchedBackend())
        batched_s = min(batched_s, batched_backend.seconds)

    # Parity: bit-identical responses, request by request.
    for reference, response in zip(scalar_responses, batched_responses, strict=True):
        assert reference.request_id == response.request_id
        assert reference.success == response.success
        assert reference.widths == response.widths
        assert reference.iterations == response.iterations
        assert reference.spice_simulations == response.spice_simulations
        assert (reference.metrics is None) == (response.metrics is None)
        if reference.metrics is not None:
            assert np.array_equal(
                reference.metrics.as_array(), response.metrics.as_array(), equal_nan=True
            )

    # The whole round's surviving candidates shared one bulk call.
    assert batched_backend.calls == 1
    assert batched_backend.candidates == scalar_backend.candidates
    assert batched_backend.candidates >= len(requests) // 2

    verified = batched_backend.candidates
    speedup = scalar_s / batched_s
    lines = [
        "Table VIII addendum -- Stage IV verification throughput (round-batched)",
        "",
        f"round: {len(requests)} copilot requests, {verified} verifiable candidates, "
        f"best of {VERIFY_REPEATS} runs",
        f"sequential per-candidate backend: {scalar_s:8.3f} s "
        f"({verified / scalar_s:7.1f} verifications/s)",
        f"round-batched measure_many path: {batched_s:8.3f} s "
        f"({verified / batched_s:7.1f} verifications/s)",
        f"verification-stage speedup: {speedup:.1f}x",
        "responses: bit-identical to the sequential backend",
    ]
    write_result("table8_verification_throughput", lines)
    write_bench_json(
        "verification",
        {
            "requests": len(requests),
            "verified_candidates": verified,
            "sequential_s": round(scalar_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(speedup, 2),
        },
    )

    assert speedup >= 2.0


# ----------------------------------------------------------------------
# Corner-aware evaluation throughput (stacked corners vs per-corner seq)
# ----------------------------------------------------------------------
def test_table8_corner_throughput(topologies):
    """Stacked-corner batched evaluation vs per-corner sequential:
    bit-identical per-(candidate, corner) outcomes, >=2x wall-clock.

    Model-free: the population is random simulatable designs; the batched
    path evaluates the whole population x corner block through one
    ``measure_many(corners=...)`` call (the corner axis stacks into the
    same batched DC Newton and complex AC factorization as the population
    axis), the sequential reference measures one (candidate, corner) pair
    per SPICE run.
    """
    from repro.spice import ConvergenceError

    topology = topologies["5T-OTA"]
    rng = np.random.default_rng(23)
    space = SearchSpace(topology)
    population = []
    attempts = 0
    while len(population) < N_CORNER_POP and attempts < N_CORNER_POP * 20:
        attempts += 1
        widths = space.decode(space.random_point(rng))
        try:
            topology.measure(widths)
        except ConvergenceError:
            continue
        population.append(widths)
    assert len(population) >= N_CORNER_POP // 2, "too few simulatable designs"

    scalar_backend, batched_backend = ScalarBackend(), BatchedBackend()
    # Warm both paths (imports, first-touch allocations).
    scalar_backend.measure_many(topology, population[:2], corners=CORNER_AXIS)
    batched_backend.measure_many(topology, population[:2], corners=CORNER_AXIS)

    scalar_s = batched_s = float("inf")
    for _ in range(CORNER_REPEATS):
        start = time.perf_counter()
        scalar_sweeps = scalar_backend.measure_many(
            topology, population, corners=CORNER_AXIS
        )
        scalar_s = min(scalar_s, time.perf_counter() - start)
        start = time.perf_counter()
        batched_sweeps = batched_backend.measure_many(
            topology, population, corners=CORNER_AXIS
        )
        batched_s = min(batched_s, time.perf_counter() - start)

    # Parity: bit-identical outcomes per (candidate, corner) pair.
    for reference, sweep in zip(scalar_sweeps, batched_sweeps, strict=True):
        assert reference.corners == sweep.corners
        for ref_outcome, outcome in zip(reference.outcomes, sweep.outcomes, strict=True):
            assert ref_outcome.ok == outcome.ok
            if not ref_outcome.ok:
                continue
            assert np.array_equal(
                ref_outcome.result.metrics.as_array(),
                outcome.result.metrics.as_array(),
                equal_nan=True,
            )
            assert (
                ref_outcome.result.dc.node_voltages
                == outcome.result.dc.node_voltages
            )

    pairs = len(population) * len(CORNER_AXIS)
    speedup = scalar_s / batched_s
    lines = [
        "Table VIII addendum -- corner-aware evaluation throughput",
        "",
        f"population: {len(population)} candidates x {len(CORNER_AXIS)} corners "
        f"({', '.join(CORNER_AXIS)}) = {pairs} evaluations, "
        f"best of {CORNER_REPEATS} runs",
        f"per-corner sequential evaluation:  {scalar_s:8.3f} s "
        f"({pairs / scalar_s:7.1f} evals/s)",
        f"stacked-corner batched evaluation: {batched_s:8.3f} s "
        f"({pairs / batched_s:7.1f} evals/s)",
        f"corner-evaluation speedup: {speedup:.1f}x",
        "outcomes: bit-identical per (candidate, corner) pair",
    ]
    write_result("table8_corner_throughput", lines)
    write_bench_json(
        "corner",
        {
            "candidates": len(population),
            "corners": list(CORNER_AXIS),
            "evaluations": pairs,
            "sequential_s": round(scalar_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(speedup, 2),
        },
    )

    assert speedup >= 2.0


# ----------------------------------------------------------------------
# Transient (step-response) integration throughput (batched vs sequential)
# ----------------------------------------------------------------------
def test_table8_tran_throughput(topologies):
    """Batched ``run_tran_many`` vs the per-candidate ``run_tran`` loop:
    bit-identical waveforms, >=2x wall-clock on a candidate population.

    Model-free: the population is random simulatable designs whose DC
    operating points are solved once up front, so the timed difference
    isolates the transient integration stage -- the candidate-vectorized
    Newton per time step with one stacked linear solve per iteration vs
    one full scalar integration per candidate.
    """
    from repro.spice import ConvergenceError, run_tran, run_tran_many, solve_dc

    topology = topologies["5T-OTA"]
    rng = np.random.default_rng(31)
    space = SearchSpace(topology)
    solutions = []
    attempts = 0
    while len(solutions) < N_TRAN_POP and attempts < N_TRAN_POP * 20:
        attempts += 1
        widths = space.decode(space.random_point(rng))
        try:
            circuit = topology.build(widths)
            solutions.append(solve_dc(circuit, initial_guess=topology.initial_guess()))
        except ConvergenceError:
            continue
    assert len(solutions) >= N_TRAN_POP // 2, "too few simulatable designs"

    kwargs = dict(
        t_stop=topology.tran_t_stop,
        n_steps=topology.tran_steps,
        method=topology.tran_method,
        step_amplitude=topology.tran_step_v,
    )

    # Warm both paths (imports, first-touch allocations).
    run_tran(solutions[0], **kwargs)
    run_tran_many(solutions[:2], **kwargs)

    sequential_s = batched_s = float("inf")
    for _ in range(TRAN_REPEATS):
        start = time.perf_counter()
        sequential = [run_tran(solution, **kwargs) for solution in solutions]
        sequential_s = min(sequential_s, time.perf_counter() - start)
        start = time.perf_counter()
        batched = run_tran_many(solutions, **kwargs)
        batched_s = min(batched_s, time.perf_counter() - start)

    # Parity: bit-identical waveforms, candidate by candidate.
    for reference, result in zip(sequential, batched, strict=True):
        assert np.array_equal(reference.times, result.times)
        assert np.array_equal(reference.waveforms, result.waveforms)
        assert reference.newton_iterations == result.newton_iterations

    count = len(solutions)
    speedup = sequential_s / batched_s
    lines = [
        "Table VIII addendum -- transient integration throughput",
        "",
        f"population: {count} candidates x {topology.tran_steps} time steps "
        f"({topology.tran_method}, t_stop={topology.tran_t_stop:.0e} s), "
        f"best of {TRAN_REPEATS} runs",
        f"per-candidate sequential integration: {sequential_s:8.3f} s "
        f"({count / sequential_s:7.1f} candidates/s)",
        f"batched run_tran_many integration:    {batched_s:8.3f} s "
        f"({count / batched_s:7.1f} candidates/s)",
        f"transient-integration speedup: {speedup:.1f}x",
        "waveforms: bit-identical to the sequential loop",
    ]
    write_result("table8_tran_throughput", lines)
    write_bench_json(
        "tran",
        {
            "candidates": count,
            "time_steps": topology.tran_steps,
            "sequential_s": round(sequential_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(speedup, 2),
        },
    )

    assert speedup >= 2.0


# ----------------------------------------------------------------------
# Linear-solver node-count scaling (sparse vs dense backend)
# ----------------------------------------------------------------------
def _ladder_circuit(n_segments, label):
    """A driven RC ladder with per-node current injections: the node-count
    scaling workload of the linsolve layer.

    Each segment adds a series resistor, a ground resistor, a ground
    capacitor and a small dc injection (the injections keep the deep tail
    nodes at O(10 mV) instead of attenuating into denormals, so relative
    DC parity between backends stays meaningful).  MNA size is
    ``n_segments + 2`` (nodes + the one driving source).  Values vary
    with the segment index so the matrix has no accidental symmetry.
    """
    from repro.spice import Circuit

    circuit = Circuit(name=f"LADDER-{label}")
    circuit.add_vsource("VIN", "n0", "0", 1.0, ac=1.0)
    for k in range(1, n_segments + 1):
        circuit.add_resistor(f"R{k}", f"n{k - 1}", f"n{k}", 1e3 * (1.0 + 0.1 * (k % 7)))
        circuit.add_resistor(f"RG{k}", f"n{k}", "0", 1e4)
        circuit.add_capacitor(f"C{k}", f"n{k}", "0", 1e-12)
        circuit.add_isource(f"I{k}", "0", f"n{k}", 1e-6 * (1.0 + (k % 3)))
    return circuit


def test_table8_solver_scaling():
    """Sparse vs dense linsolve backend across growing MNA sizes:
    machine-precision parity at every size, >=2x at the largest.

    Model-free (pure linear circuits, CI smoke): a batch of RC ladders per
    size is solved for DC and swept over a log frequency grid, once per
    backend via ``use_backend`` -- the same ``solve_dc_many``/``run_ac_many``
    entry points the sizing flow drives, so the timed difference is purely
    the linear-solve layer.  The smallest size documents the dense win the
    auto-dispatch threshold exists for (no floor asserted there).
    """
    from repro.spice import run_ac_many, solve_dc_many, use_backend

    frequencies = np.logspace(3, 8, SCALING_FREQS)

    def run(n_segments, mode):
        circuits = [
            _ladder_circuit(n_segments, f"{mode}-{i}") for i in range(SCALING_BATCH)
        ]
        with use_backend(mode):
            start = time.perf_counter()
            dc_solutions = solve_dc_many(circuits)
            ac_results = run_ac_many(dc_solutions, frequencies)
            elapsed = time.perf_counter() - start
        return elapsed, dc_solutions, ac_results

    rows = []
    for size in SCALING_SIZES:
        n_segments = size - 2  # MNA size = nodes (n_segments + 1) + 1 source
        # Warm both paths (imports, first-touch allocations, pattern cache).
        run(n_segments, "dense")
        run(n_segments, "sparse")

        dense_s = sparse_s = float("inf")
        for _ in range(SCALING_REPEATS):
            elapsed, dense_dc, dense_ac = run(n_segments, "dense")
            dense_s = min(dense_s, elapsed)
            elapsed, sparse_dc, sparse_ac = run(n_segments, "sparse")
            sparse_s = min(sparse_s, elapsed)

        # Parity: the sparse factorization must reproduce the dense
        # solutions to machine precision (measured ~1e-16 relative), for
        # every candidate, node and frequency.
        out = f"n{n_segments}"
        for ref, got in zip(dense_dc, sparse_dc, strict=True):
            ref_v = np.array([ref.node_voltages[n] for n in sorted(ref.node_voltages)])
            got_v = np.array([got.node_voltages[n] for n in sorted(got.node_voltages)])
            np.testing.assert_allclose(got_v, ref_v, rtol=1e-9, atol=0.0)
        for ref, got in zip(dense_ac, sparse_ac, strict=True):
            np.testing.assert_allclose(
                got.magnitude_db(out), ref.magnitude_db(out), rtol=0.0, atol=1e-9
            )

        rows.append(
            {
                "size": size,
                "dense_s": round(dense_s, 4),
                "sparse_s": round(sparse_s, 4),
                "speedup": round(dense_s / sparse_s, 2),
            }
        )

    lines = [
        "Table VIII addendum -- linear-solver node-count scaling (sparse backend)",
        "",
        f"workload per size: {SCALING_BATCH} RC ladders, one batched DC solve "
        f"+ {SCALING_FREQS}-point AC sweep, best of {SCALING_REPEATS} runs",
        f"{'MNA size':>8s} {'dense [s]':>10s} {'sparse [s]':>11s} {'speedup':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row['size']:>8d} {row['dense_s']:>10.4f} "
            f"{row['sparse_s']:>11.4f} {row['speedup']:>7.2f}x"
        )
    lines.append("solutions: machine-precision parity between backends at every size")
    write_result("table8_solver_scaling", lines)

    largest = rows[-1]
    write_bench_json(
        "scaling",
        {
            "sizes": list(SCALING_SIZES),
            "batch": SCALING_BATCH,
            "ac_frequencies": SCALING_FREQS,
            "rows": rows,
            "largest_size": largest["size"],
            "speedup": largest["speedup"],
            "speedup_floor": SCALING_SPEEDUP_FLOOR,
            "speedup_floor_enforced": True,
        },
    )

    assert largest["speedup"] >= SCALING_SPEEDUP_FLOOR, rows
