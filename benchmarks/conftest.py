"""Shared fixtures for the benchmark suite.

Every benchmark that needs the trained model shares one artifact, trained
once with :data:`repro.core.pipeline.BENCHMARK_CONFIG` and cached under
``benchmarks/.artifact_cache`` (pre-buildable with
``python scripts/build_bench_artifact.py``).

Each bench writes its reproduced table/figure rows to
``benchmarks/results/<name>.txt`` (pytest captures stdout by default) and
also prints them, so running with ``-s`` shows them live.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

from repro.core import predict_over_records
from repro.core.pipeline import BENCHMARK_CONFIG, train_sizing_model
from repro.topologies import topology_by_name

CACHE_DIR = Path(__file__).resolve().parent / ".artifact_cache"
RESULTS_DIR = Path(__file__).resolve().parent / "results"
#: Perf snapshots land in the repo root (``benchmarks/results`` is
#: gitignored; the ``BENCH_*.json`` files are committed per PR so the
#: perf trajectory lives in history).
BENCH_JSON_DIR = Path(__file__).resolve().parent.parent

#: Validation designs used per topology for prediction-quality benches.
N_VALIDATION = 60


def _active_config():
    """Benchmark pipeline config; ``REPRO_BENCH_PROFILE=tiny`` switches to a
    minutes-scale configuration for smoke-testing the bench suite itself
    (quality assertions are expected to fail at that scale)."""
    import os

    if os.environ.get("REPRO_BENCH_PROFILE") == "tiny":
        from dataclasses import replace

        return replace(
            BENCHMARK_CONFIG,
            designs_per_topology=(("5T-OTA", 40), ("CM-OTA", 30), ("2S-OTA", 30)),
            epochs=2,
            d_model=32,
            n_heads=4,
            d_ff=48,
        )
    return BENCHMARK_CONFIG


@pytest.fixture(scope="session")
def artifact():
    """The trained sizing model plus datasets (cached on disk)."""
    return train_sizing_model(_active_config(), cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def topologies():
    return {name: topology_by_name(name) for name, _ in BENCHMARK_CONFIG.designs_per_topology}


@pytest.fixture(scope="session")
def engine(artifact, topologies):
    """A shared batched sizing engine over the benchmark model."""
    from repro.service import SizingEngine

    eng = SizingEngine(artifact.model)
    for topology in topologies.values():
        eng.adopt_topology(topology)
    return eng


class _PredictionCache:
    """Session-level cache of validation predictions per topology."""

    def __init__(self, artifact, topologies):
        self._artifact = artifact
        self._topologies = topologies
        self._cache = {}

    def get(self, name: str):
        if name not in self._cache:
            records = self._artifact.val_records[name][:N_VALIDATION]
            self._cache[name] = predict_over_records(
                self._artifact.model, self._topologies[name], records
            )
        return self._cache[name]


@pytest.fixture(scope="session")
def predictions(artifact, topologies):
    return _PredictionCache(artifact, topologies)


def write_result(name: str, lines) -> str:
    """Write result lines to ``benchmarks/results/<name>.txt`` and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n===== {name} =====")
    print(text)
    return text


def write_bench_json(name: str, payload: dict) -> Path:
    """Write a machine-readable perf snapshot to ``BENCH_<name>.json``.

    The human-readable table still goes through :func:`write_result`; this
    is the per-PR perf trajectory -- one small JSON document per smoke
    bench, committed at the repo root and uploaded as a CI artifact, so
    regressions show up as diffs instead of vibes.

    Degraded-environment guard: a snapshot whose bench ran with its
    speedup floor waived (``speedup_floor_enforced: false`` -- e.g. the
    shard bench on a runner with too few cores) must not clobber a
    committed representative snapshot; it lands in
    ``BENCH_<name>.local.json`` (gitignored) instead, so the committed
    trajectory only ever records runs the floor actually vouches for.
    """
    path = BENCH_JSON_DIR / f"BENCH_{name}.json"
    if payload.get("speedup_floor_enforced") is False and path.exists():
        path = BENCH_JSON_DIR / f"BENCH_{name}.local.json"
        print(f"perf snapshot degraded (speedup floor waived); keeping committed {name}")
    document = {
        "bench": name,
        "python": platform.python_version(),
        **payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"perf snapshot: {path}")
    return path
