"""Table II: correlation coefficients for the 5T-OTA.

Pearson correlation between transformer-predicted device parameters and
the simulation-based validation values, per matched device group -- our
version of the paper's Table II.  The benchmarked operation is the
correlation computation over the cached prediction set.
"""

import numpy as np

from conftest import write_result
from _tables import correlation_lines, mean_abs_corr


def test_table2_correlations_5t(benchmark, topologies, predictions):
    topology = topologies["5T-OTA"]
    prediction_set = predictions.get("5T-OTA")
    lines, table = correlation_lines(
        "Table II -- 5T-OTA correlation coefficients (ours vs paper)",
        topology,
        prediction_set,
    )
    write_result("table2_corr_5t", lines)

    # Shape: predictions must correlate positively overall; the dominant
    # differential-pair gm is the paper's strongest row.
    assert mean_abs_corr(table) > 0.4
    dp_gm = table["M3"]["gm"]
    assert dp_gm > 0.5

    desired, predicted = prediction_set.arrays("M3", "gm")
    benchmark(lambda: np.corrcoef(desired, predicted)[0, 1])
