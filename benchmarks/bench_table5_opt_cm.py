"""Table V: target vs optimized performance for the CM-OTA.

Runs the full Fig. 3 sizing flow on three unseen validation specifications
and reports target vs achieved metrics -- our version of the paper's
Table V.  The specs go through ``SizingEngine.size_batch`` so Stage I/II
inference is batched; the benchmarked operation is one full sizing call.
"""

from repro.service import SizingRequest

from conftest import write_result
from _tables import optimization_lines


def test_table5_target_vs_optimized_cm(benchmark, artifact, engine):
    records = artifact.val_records["CM-OTA"]
    lines, responses = optimization_lines(
        "Table V -- CM-OTA target vs optimized", engine, "CM-OTA", records, n_designs=3
    )
    successes = sum(r.success for r in responses)
    lines.append("")
    lines.append(f"{successes}/3 specifications met")
    write_result("table5_opt_cm", lines)

    assert successes >= 1

    record = records[3]
    request = SizingRequest.for_spec("CM-OTA", record.gain_db, record.f3db_hz, record.ugf_hz)
    benchmark.pedantic(lambda: engine.size(request), rounds=1, iterations=1)
