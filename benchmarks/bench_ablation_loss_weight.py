"""Ablation: weighted vs unweighted cross-entropy (Sec. III-C).

The paper found that upweighting the numeric-value token classes by 20%
"yielded optimal performance".  This ablation trains two small models on
the same 5T-OTA pairs -- one with the 1.2x numeric weight, one unweighted
-- and compares their *numeric-token* validation accuracy, the quantity
the weighting targets.  At this scale the difference is small and noisy;
the bench reports it and only asserts that both runs train successfully.
"""

import numpy as np

from repro.transformer import (
    SequencePair,
    Trainer,
    Transformer,
    TransformerConfig,
    WeightedCrossEntropy,
    make_batches,
    numeric_token_weights,
)

from conftest import write_result

EPOCHS = 8
N_PAIRS = 240


def _numeric_accuracy(model, loss_fn, pairs, vocab, numeric_ids):
    batches = make_batches(pairs, 32, vocab.pad_id, vocab.bos_id, vocab.eos_id)
    correct = 0
    total = 0
    for batch in batches:
        logits = model.forward(batch.src, batch.tgt_in, batch.src_pad, batch.tgt_pad, training=False)
        predictions = np.argmax(logits, axis=-1)
        mask = np.isin(batch.tgt_out, numeric_ids) & (batch.tgt_out != vocab.pad_id)
        correct += int(((predictions == batch.tgt_out) & mask).sum())
        total += int(mask.sum())
    return correct / max(total, 1)


def test_ablation_weighted_loss(benchmark, artifact):
    vocab = artifact.model.vocab
    bpe = artifact.model.bpe
    builder = artifact.model.builder("5T-OTA")
    records = artifact.train_records["5T-OTA"][:N_PAIRS]
    pairs = [
        SequencePair(
            source=tuple(vocab.encode(bpe.encode(builder.encoder_text(r.gain_db, r.f3db_hz, r.ugf_hz)))),
            target=tuple(vocab.encode(bpe.encode(builder.decoder_text(r.device_params)))),
        )
        for r in records
    ]
    split = int(0.85 * len(pairs))
    train_pairs, val_pairs = pairs[:split], pairs[split:]

    weights = numeric_token_weights(vocab, numeric_weight=1.2)
    numeric_ids = np.where(weights > 1.0)[0]

    accuracies = {}
    for label, class_weights in (("weighted(1.2x)", weights), ("unweighted", None)):
        config = TransformerConfig(
            vocab_size=len(vocab), d_model=48, n_heads=4, n_encoder_layers=1,
            n_decoder_layers=1, d_ff=96, dropout=0.0, max_len=1024, seed=7,
            dtype="float32",
        )
        model = Transformer(config)
        loss_fn = WeightedCrossEntropy(class_weights=class_weights, pad_id=vocab.pad_id)
        trainer = Trainer(model, loss_fn, vocab.pad_id, vocab.bos_id, vocab.eos_id,
                          lr=1e-3, batch_size=32, seed=0)
        history = trainer.fit(train_pairs, val_pairs, epochs=EPOCHS)
        accuracies[label] = (
            _numeric_accuracy(model, loss_fn, val_pairs, vocab, numeric_ids),
            history.train_loss[-1],
            history.train_loss[0],
        )

    lines = [
        "Ablation -- weighted (numeric tokens x1.2) vs unweighted loss",
        "",
        f"5T-OTA subset, {len(train_pairs)} train pairs, {EPOCHS} epochs, d_model=48",
        "",
        f"{'variant':16s} {'numeric-token val acc':>22s} {'final train loss':>17s}",
    ]
    for label, (acc, final_loss, first_loss) in accuracies.items():
        lines.append(f"{label:16s} {acc:>22.3f} {final_loss:>17.4f}")
        assert final_loss < first_loss  # both variants must actually train
    write_result("ablation_loss_weight", lines)

    sample = train_pairs[0]
    model_pairs = [sample]
    benchmark.pedantic(
        lambda: _numeric_accuracy(
            artifact.model.transformer,
            WeightedCrossEntropy(pad_id=vocab.pad_id),
            model_pairs,
            vocab,
            numeric_ids,
        ),
        rounds=1,
        iterations=1,
    )
