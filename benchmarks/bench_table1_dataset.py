"""Table I: dataset information per topology.

Reports the observed specification ranges of the generated datasets plus
the forward-path / cycle counts of each topology's DP-SFG, side by side
with the paper's numbers.  The benchmarked operation is one full design
measurement (DC + AC + metric extraction), the unit of dataset generation.
"""

from conftest import write_result

PAPER = {
    "5T-OTA": dict(gain="18-23", bw="7-54", ugf="80-871", paths=9, cycles=4),
    "CM-OTA": dict(gain="19-25", bw="17.5-86", ugf="57-1185", paths=26, cycles=5),
    "2S-OTA": dict(gain="28-54", bw="0.01-0.32", ugf="1.8-370", paths=2, cycles=11),
}


def test_table1_dataset_info(benchmark, artifact, topologies):
    lines = [
        "Table I -- dataset information (ours vs paper)",
        "",
        f"{'topology':8s} {'designs':>8s} {'gain [dB]':>16s} {'3dB BW [MHz]':>18s} "
        f"{'UGF [MHz]':>18s} {'#paths':>7s} {'#cycles':>8s}",
    ]
    for name, topology in topologies.items():
        dataset = artifact.datasets[name]
        ranges = dataset.metric_ranges()
        inventory = topology.path_inventory()
        gain = f"{ranges['gain_db'][0]:.1f}-{ranges['gain_db'][1]:.1f}"
        bw = f"{ranges['f3db_hz'][0] / 1e6:.2f}-{ranges['f3db_hz'][1] / 1e6:.2f}"
        ugf = f"{ranges['ugf_hz'][0] / 1e6:.0f}-{ranges['ugf_hz'][1] / 1e6:.0f}"
        lines.append(
            f"{name:8s} {len(dataset):>8d} {gain:>16s} {bw:>18s} {ugf:>18s} "
            f"{inventory.n_forward_paths:>7d} {inventory.n_cycles:>8d}"
        )
        paper = PAPER[name]
        lines.append(
            f"{'(paper)':8s} {'':>8s} {paper['gain']:>16s} {paper['bw']:>18s} "
            f"{paper['ugf']:>18s} {paper['paths']:>7d} {paper['cycles']:>8d}"
        )
    write_result("table1_dataset", lines)

    # Shape assertions: the 2S-OTA has the highest gain and the lowest
    # bandwidth; the CM-OTA reaches the highest UGF.
    r5 = artifact.datasets["5T-OTA"].metric_ranges()
    rcm = artifact.datasets["CM-OTA"].metric_ranges()
    r2s = artifact.datasets["2S-OTA"].metric_ranges()
    assert r2s["gain_db"][1] > r5["gain_db"][1]
    assert r2s["f3db_hz"][1] < r5["f3db_hz"][0]
    assert rcm["ugf_hz"][1] > r5["ugf_hz"][1]

    topology = topologies["5T-OTA"]
    widths = artifact.datasets["5T-OTA"].records[0].widths
    benchmark(lambda: topology.measure(widths))
