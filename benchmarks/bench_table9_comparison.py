"""Table IX: comparison with prior SPICE-in-the-loop sizing approaches.

The paper's Table IX is qualitative; this bench makes it quantitative on
our substrate: for the same specifications, simulated annealing, PSO and
differential evolution are run with SPICE in the loop, and the trained
transformer flow is run with its one-shot inference.  The comparison
columns are SPICE-call counts, runtime and success.
"""

import numpy as np

from repro.baselines import differential_evolution, particle_swarm, simulated_annealing
from repro.core import DesignSpec, SizingFlow

from conftest import write_result

N_SPECS = 3
MAX_EVALS = 400


def test_table9_comparison(benchmark, artifact, topologies):
    topology = topologies["5T-OTA"]
    flow = SizingFlow(topology, artifact.model)
    records = artifact.val_records["5T-OTA"][5 : 5 + N_SPECS]
    specs = [DesignSpec(r.gain_db, r.f3db_hz, r.ugf_hz) for r in records]

    rows = []
    for name, algorithm in (
        ("SA", simulated_annealing),
        ("PSO", particle_swarm),
        ("DE", differential_evolution),
    ):
        calls, times, wins = [], [], 0
        for k, spec in enumerate(specs):
            rng = np.random.default_rng(100 + k)
            result = algorithm(topology, spec, rng, max_evaluations=MAX_EVALS)
            calls.append(result.spice_calls)
            times.append(result.wall_time_s)
            wins += int(result.success)
        rows.append((name, float(np.mean(calls)), float(np.mean(times)), wins))

    flow_calls, flow_times, flow_wins = [], [], 0
    for spec in specs:
        result = flow.size(spec)
        flow_calls.append(result.spice_simulations)
        flow_times.append(result.wall_time_s)
        flow_wins += int(result.success)
    rows.append(("Transformer+LUT", float(np.mean(flow_calls)), float(np.mean(flow_times)), flow_wins))

    lines = [
        "Table IX -- comparison with SPICE-in-the-loop sizing (quantified)",
        "",
        f"{N_SPECS} unseen 5T-OTA specs; baselines capped at {MAX_EVALS} SPICE calls",
        "",
        f"{'method':16s} {'avg SPICE calls':>16s} {'avg time [s]':>13s} {'success':>8s}",
    ]
    for name, mean_calls, mean_time, wins in rows:
        lines.append(f"{name:16s} {mean_calls:>16.1f} {mean_time:>13.2f} {wins:>5d}/{N_SPECS}")
    lines.append("")
    lines.append("paper (qualitative): SA/PSO/DE very high SPICE dependency & slow;")
    lines.append("ours: transformer+LUT very low dependency (>90% one simulation), very fast.")
    write_result("table9_comparison", lines)

    transformer_row = rows[-1]
    baseline_calls = [r[1] for r in rows[:-1]]
    # Shape: the flow needs far fewer SPICE calls than every baseline.
    assert transformer_row[1] * 3 <= min(baseline_calls)
    assert transformer_row[3] >= 1

    rng = np.random.default_rng(0)
    benchmark.pedantic(
        lambda: simulated_annealing(topology, specs[0], rng, max_evaluations=40),
        rounds=1,
        iterations=1,
    )
