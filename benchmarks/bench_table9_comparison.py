"""Table IX: comparison with prior SPICE-in-the-loop sizing approaches.

The paper's Table IX is qualitative; this bench makes it quantitative on
our substrate, and since the solver redesign every method runs through
the *same* unified API (``repro.solvers``): simulated annealing, PSO and
differential evolution as registered solvers with SPICE in the loop (on
the batched evaluation backend), the trained transformer flow as the
registered ``copilot`` solver.  The comparison columns are SPICE-call
counts, runtime and success.

``test_table9_population_throughput`` is the backend's own before/after
number: one population evaluated through the sequential scalar path vs
the batched ``measure_many`` path (vectorized AC, amortized DC Newton),
with a bit-identical-metrics parity assertion.  It needs no trained
model, so it doubles as the CI smoke of the unified evaluation path.
"""

import time

import numpy as np

from repro import solvers
from repro.core import DesignSpec
from repro.solvers import BatchedBackend, ScalarBackend, SearchSpace

from conftest import write_result

N_SPECS = 3
MAX_EVALS = 400

#: Candidates per population in the throughput comparison (a typical
#: PSO/DE generation is 12; use a couple of generations' worth).
POPULATION = 24
THROUGHPUT_REPEATS = 3


def test_table9_comparison(benchmark, artifact, topologies):
    topology = topologies["5T-OTA"]
    records = artifact.val_records["5T-OTA"][5 : 5 + N_SPECS]
    specs = [DesignSpec(r.gain_db, r.f3db_hz, r.ugf_hz) for r in records]

    rows = []
    for name in ("sa", "pso", "de"):
        solver = solvers.create(name, topology)
        calls, times, wins = [], [], 0
        for k, spec in enumerate(specs):
            rng = np.random.default_rng(100 + k)
            result = solver.solve(spec, budget=MAX_EVALS, rng=rng)
            calls.append(result.spice_calls)
            times.append(result.wall_time_s)
            wins += int(result.success)
        rows.append((name.upper(), float(np.mean(calls)), float(np.mean(times)), wins))

    copilot = solvers.create("copilot", topology, model=artifact.model)
    flow_calls, flow_times, flow_wins = [], [], 0
    for spec in specs:
        result = copilot.solve(spec)
        flow_calls.append(result.spice_calls)
        flow_times.append(result.wall_time_s)
        flow_wins += int(result.success)
    rows.append(("Transformer+LUT", float(np.mean(flow_calls)), float(np.mean(flow_times)), flow_wins))

    lines = [
        "Table IX -- comparison with SPICE-in-the-loop sizing (quantified)",
        "",
        f"{N_SPECS} unseen 5T-OTA specs; baselines capped at {MAX_EVALS} SPICE calls;",
        "all methods dispatched through the unified repro.solvers API",
        "",
        f"{'method':16s} {'avg SPICE calls':>16s} {'avg time [s]':>13s} {'success':>8s}",
    ]
    for name, mean_calls, mean_time, wins in rows:
        lines.append(f"{name:16s} {mean_calls:>16.1f} {mean_time:>13.2f} {wins:>5d}/{N_SPECS}")
    lines.append("")
    lines.append("paper (qualitative): SA/PSO/DE very high SPICE dependency & slow;")
    lines.append("ours: transformer+LUT very low dependency (>90% one simulation), very fast.")
    write_result("table9_comparison", lines)

    transformer_row = rows[-1]
    baseline_calls = [r[1] for r in rows[:-1]]
    # Shape: the flow needs far fewer SPICE calls than every baseline.
    assert transformer_row[1] * 3 <= min(baseline_calls)
    assert transformer_row[3] >= 1

    rng = np.random.default_rng(0)
    sa = solvers.create("sa", topology)
    benchmark.pedantic(
        lambda: sa.solve(specs[0], budget=40, rng=rng),
        rounds=1,
        iterations=1,
    )


def test_table9_population_throughput(topologies):
    """Scalar vs batched population evaluation: parity + >=2x throughput.

    The claim of the evaluation-backend redesign: submitting a whole
    PSO/DE-style population to ``measure_many`` (stacked complex MNA over
    population x frequency grid, DC Newton assembly amortized across
    candidates) is at least twice as fast as the sequential per-candidate
    ``measure`` loop, while every metric stays bit-identical.
    """
    topology = topologies["5T-OTA"]
    space = SearchSpace(topology)
    rng = np.random.default_rng(42)
    population = [space.decode(space.random_point(rng)) for _ in range(POPULATION)]

    scalar, batched = ScalarBackend(), BatchedBackend()
    # Warm both paths (imports, first-touch allocations).
    scalar.measure_many(topology, population[:2])
    batched.measure_many(topology, population[:2])

    scalar_s, batched_s = float("inf"), float("inf")
    for _ in range(THROUGHPUT_REPEATS):
        start = time.perf_counter()
        scalar_outcomes = scalar.measure_many(topology, population)
        scalar_s = min(scalar_s, time.perf_counter() - start)
        start = time.perf_counter()
        batched_outcomes = batched.measure_many(topology, population)
        batched_s = min(batched_s, time.perf_counter() - start)

    # Parity: bit-identical metrics, candidate by candidate.
    for reference, outcome in zip(scalar_outcomes, batched_outcomes, strict=True):
        assert reference.ok == outcome.ok
        if reference.ok:
            assert np.array_equal(
                reference.result.metrics.as_array(),
                outcome.result.metrics.as_array(),
                equal_nan=True,
            )

    speedup = scalar_s / batched_s
    lines = [
        "Table IX addendum -- population evaluation throughput (solver redesign)",
        "",
        f"population: {POPULATION} candidate 5T-OTA designs, best of {THROUGHPUT_REPEATS} runs",
        f"sequential measure() loop:   {scalar_s:8.3f} s "
        f"({POPULATION / scalar_s:7.1f} candidates/s)",
        f"batched measure_many() path: {batched_s:8.3f} s "
        f"({POPULATION / batched_s:7.1f} candidates/s)",
        f"population-evaluation speedup: {speedup:.1f}x",
        "metrics: bit-identical to the sequential path",
    ]
    write_result("table9_population_throughput", lines)

    assert speedup >= 2.0
