"""Checks analyzer smoke: the two-pass project analysis stays fast.

The analyzer went project-wide in PR 8 — pass 1 builds the symbol table,
call graph, and per-function summaries for the whole ``src/repro`` tree;
pass 2 runs seven rule families over it, three of them interprocedural
(lock-order, fork-safety, hot-loop).  That is the kind of feature that
quietly turns a pre-commit hook into a coffee break, so this smoke bench
pins the wall-clock of a cold full-tree run under a soft budget and
records the measured numbers in ``BENCH_checks.json``.

It also re-asserts the CI gate inline: the live tree is clean under
every default rule with the committed baseline kept empty.
"""

import time
from pathlib import Path

import repro
from repro.checks import DEFAULT_RULES, run_checks

from conftest import write_bench_json, write_result

#: Soft wall-clock budget for one cold full-tree run (pass 1 + pass 2).
#: Generous on CI runners; a 10x regression (accidentally quadratic
#: closure, per-call re-parsing) blows straight through it.
BUDGET_S = 10.0

#: Best-of repeats to shave scheduler noise off the recorded number.
REPEATS = 3


def test_checks_full_tree_speed():
    package_root = Path(repro.__file__).resolve().parent

    best_s = float("inf")
    report = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        report = run_checks([package_root], list(DEFAULT_RULES))
        best_s = min(best_s, time.perf_counter() - start)

    assert report is not None
    assert report.findings == [], "\n".join(f.format() for f in report.findings)
    assert report.files_checked > 50
    assert best_s < BUDGET_S, (
        f"full-tree checks run took {best_s:.2f}s (budget {BUDGET_S:.0f}s); "
        "the two-pass analyzer regressed"
    )

    files_per_s = report.files_checked / best_s
    write_result(
        "bench_checks",
        [
            f"files analyzed        : {report.files_checked}",
            f"rules                 : {len(report.rules)}",
            f"cold full-tree run    : {best_s * 1e3:.0f} ms (best of {REPEATS})",
            f"throughput            : {files_per_s:.0f} files/s",
            f"findings (live tree)  : {len(report.findings)}",
        ],
    )
    write_bench_json(
        "checks",
        {
            "files_checked": report.files_checked,
            "rules": len(report.rules),
            "full_tree_s": round(best_s, 4),
            "files_per_s": round(files_per_s, 1),
            "findings": len(report.findings),
            "budget_s": BUDGET_S,
        },
    )
