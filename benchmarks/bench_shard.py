"""Sharded engine throughput: multiprocess pool vs single-process engine.

The sharding tentpole's claim: the engine's remaining wall-clock is
pure-Python work serialized by one GIL (inference bookkeeping, netlist
assembly, the copilot loop around the vectorized solves), so a pool of
worker *processes* — each running the same ``SizingEngine`` over the
mmap-shared model — should scale a mixed-topology workload with cores
while answering bit-identically.  This bench measures exactly that
(model-free, CI smoke):

* **before** — one ``SizingEngine.size_batch`` call over the whole
  mixed-topology, corner-aware workload in a single process;
* **after** — the same workload through ``ShardedEngine`` with
  ``WORKERS`` spawn workers (hash-of-spec routing), each worker sizing
  its slice with the identical engine code.

Responses are asserted bit-identical between the two paths (modulo
``wall_time_s``); the measured numbers land in ``BENCH_shard.json``.

The >= 2x speedup floor is enforced only when the machine actually has
>= ``MIN_CORES_FOR_FLOOR`` usable cores: worker processes cannot beat a
single process on a one-core container no matter how correct the
sharding is, so on starved boxes the JSON snapshot records the honest
number (plus the core count) and the floor assertion is skipped instead
of lying with a rigged workload.

The worker factory (and everything reachable from its arguments) is
module-level plain data: spawn re-imports this module in each fresh
interpreter and rebuilds the oracle there, which is also why the oracle
takes ``params_by_spec`` dicts instead of closing over local state.
"""

import os
import time
from functools import partial

import numpy as np

from repro.core import DesignSpec
from repro.core.bundle import SizingModel
from repro.datagen import SequenceBuilder, SequenceConfig
from repro.datagen.serialize import ParsedParams
from repro.service import SizingEngine, SizingRequest
from repro.shard import ShardedEngine
from repro.solvers import SearchSpace
from repro.topologies import topology_by_name

from conftest import write_bench_json, write_result

#: Specs per topology in the mixed workload (3 topologies).
N_PER_TOPOLOGY = 8
#: Pool size; the acceptance criterion's ``--workers >= 4``.
WORKERS = 4
#: Best-of repeats for both paths.
REPEATS = 2
#: PVT corner axis: six corners (the three presets plus supply-skew
#: variants) multiply the Stage IV work per request without growing the
#: pickled request/response volume — the realistic serving regime the
#: pool exists for, and enough per-slice compute to amortize IPC.
CORNER_AXIS = (
    "tt",
    "ss",
    "ff",
    {"name": "tt-lo", "process": "tt", "vdd_scale": 0.95},
    {"name": "tt-hi", "process": "tt", "vdd_scale": 1.05},
    {"name": "ss-vnom", "process": "ss", "vdd_scale": 1.0},
)

SPEEDUP_FLOOR = 2.0
#: Below this many usable cores the floor cannot physically hold.
MIN_CORES_FOR_FLOOR = 4


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _collect_params(topology, count, rng):
    """Measured device parameters per spec: plain, picklable data."""
    from repro.spice import ConvergenceError

    space = SearchSpace(topology)
    params_by_spec = {}
    attempts = 0
    while len(params_by_spec) < count and attempts < count * 20:
        attempts += 1
        widths = space.decode(space.random_point(rng))
        try:
            measurement = topology.measure(widths)
        except ConvergenceError:
            continue
        if not measurement.metrics.is_valid():
            continue
        spec = DesignSpec.from_metrics(measurement.metrics, slack=0.05)
        params_by_spec[spec] = {
            group.name: dict(measurement.device_params[group.name])
            for group in topology.groups
        }
    assert len(params_by_spec) >= count // 2, "too few simulatable designs"
    return params_by_spec


class _ShardOracle(SizingModel):
    """Model-free 'perfect transformer' over plain per-spec parameters.

    Unlike the closure-based oracle in ``bench_table8_runtime``, this one
    is constructed from a picklable dict so spawn workers can rebuild it.
    """

    def __init__(self, params_by_topology):
        from repro.devices import NMOS_65NM, PMOS_65NM
        from repro.lut import build_lut

        builders = {
            name: SequenceBuilder(topology_by_name(name), SequenceConfig())
            for name in params_by_topology
        }
        super().__init__(
            transformer=None, bpe=None, vocab=None,
            sequence_config=next(iter(builders.values())).config,
            builders=builders,
            luts={NMOS_65NM.name: build_lut(NMOS_65NM), PMOS_65NM.name: build_lut(PMOS_65NM)},
        )
        self._params = params_by_topology

    def predict_params(self, topology_name, spec, max_len=None):
        values = {
            group: dict(params)
            for group, params in self._params[topology_name][spec].items()
        }
        return ParsedParams(values=values, complete=True), f"<oracle:{spec.gain_db:.4f}>"

    def predict_params_many(self, specs_by_topology, max_len=None):
        return {
            name: [self.predict_params(name, spec, max_len) for spec in specs]
            for name, specs in specs_by_topology.items()
        }


def _oracle_engine(params_by_topology):
    """Worker factory (module-level: spawn pickles it by qualified name)."""
    return SizingEngine(_ShardOracle(params_by_topology), cache_size=0)


def _comparable(response):
    payload = response.to_json()
    payload.pop("wall_time_s")
    payload.pop("cached", None)
    return payload


def test_shard_throughput(topologies):
    rng = np.random.default_rng(47)
    params_by_topology = {}
    requests = []
    for name, topology in topologies.items():
        params = _collect_params(topology, N_PER_TOPOLOGY, rng)
        params_by_topology[name] = params
        requests.extend(
            SizingRequest(
                topology=name, spec=spec, id=f"{name}-{i}",
                max_iterations=1, corners=CORNER_AXIS,
            )
            for i, spec in enumerate(params)
        )
    assert len(requests) >= 12

    # ------------------------------------------------------------------
    # Before: the whole workload through one single-process engine.
    single = _oracle_engine(params_by_topology)
    single.size_batch(requests)  # warm (lazy topology adoption, first-touch)
    single_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        reference = single.size_batch(requests)
        single_s = min(single_s, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # After: the same workload across WORKERS spawn processes.
    pool = ShardedEngine(
        partial(_oracle_engine, params_by_topology), workers=WORKERS, shard_by="spec"
    )
    try:
        pool.size_batch(requests)  # warm every worker's slice
        sharded_s = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            responses = pool.size_batch(requests)
            sharded_s = min(sharded_s, time.perf_counter() - start)
        health = pool.health()
        busy_workers = sum(
            1 for worker in pool.workers_payload() if worker["requests"] > 0
        )
    finally:
        pool.close()

    # Parity: bit-identical responses, request by request.
    assert health["status"] == "ok"
    for expected, got in zip(reference, responses, strict=True):
        assert _comparable(expected) == _comparable(got), got.request_id
    # The hash routing actually spread the workload.
    assert busy_workers >= 2

    cores = _usable_cores()
    speedup = single_s / sharded_s
    enforce_floor = cores >= MIN_CORES_FOR_FLOOR
    lines = [
        "Sharded engine throughput -- multiprocess pool vs single process",
        "",
        f"workload: {len(requests)} requests ({N_PER_TOPOLOGY} specs x "
        f"{len(params_by_topology)} topologies x {len(CORNER_AXIS)} corners), "
        f"best of {REPEATS} runs",
        f"single-process size_batch: {single_s:8.3f} s "
        f"({len(requests) / single_s:6.1f} req/s)",
        f"sharded pool ({WORKERS} workers): {sharded_s:8.3f} s "
        f"({len(requests) / sharded_s:6.1f} req/s)",
        f"speedup: {speedup:.2f}x on {cores} usable core(s), "
        f"{busy_workers}/{WORKERS} workers busy",
        "responses: bit-identical to the single-process engine",
    ]
    if not enforce_floor:
        lines.append(
            f"speedup floor skipped: {cores} core(s) < {MIN_CORES_FOR_FLOOR} "
            "(process pools cannot beat one process on a starved container)"
        )
    write_result("shard_throughput", lines)
    write_bench_json(
        "shard",
        {
            "requests": len(requests),
            "topologies": sorted(params_by_topology),
            "corners": list(CORNER_AXIS),
            "workers": WORKERS,
            "busy_workers": busy_workers,
            "usable_cores": cores,
            "repeats": REPEATS,
            "single_process_s": round(single_s, 4),
            "sharded_s": round(sharded_s, 4),
            "speedup": round(speedup, 2),
            "parity": "bit-identical",
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup_floor_enforced": enforce_floor,
        },
    )

    if enforce_floor:
        assert speedup >= SPEEDUP_FLOOR, (
            f"sharded pool below the {SPEEDUP_FLOOR}x floor on {cores} cores: "
            f"{speedup:.2f}x (single {single_s:.3f}s, sharded {sharded_s:.3f}s)"
        )
