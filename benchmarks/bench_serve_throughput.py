"""Serve throughput: micro-batched HTTP serving vs sequential calls.

The micro-batcher's whole value proposition is that N *independent*
concurrent clients -- each sending one request, none aware of the others
-- get the engine's batched path anyway.  This bench measures exactly
that claim (model-free, CI smoke):

* **before** -- the pre-serving reality: one ``engine.size()`` call per
  request, strictly sequential (single requests cannot share inference
  or Stage IV work);
* **after** -- the same requests as N concurrent single-request HTTP
  clients against a live ``SizingServer``, where the micro-batcher
  coalesces them into a handful of ``size_batch`` calls.

Assertions: every response bit-identical to a direct ``size_batch`` run
on a fresh engine, batches-per-request < 1 (coalescing actually formed
batches), and a wall-clock speedup.  The measured numbers land in
``BENCH_serve.json`` at the repo root -- the committed perf snapshot the
acceptance criteria call for.
"""

import http.client
import json
import threading
import time

import numpy as np

from repro.serve import create_server, serve_forever_in_thread
from repro.service import SizingEngine, SizingRequest, SizingResponse

from bench_table8_runtime import _measured_oracle
from conftest import write_bench_json, write_result

#: Concurrent single-request clients (one busy serving moment).
N_CLIENTS = 24

#: Serving window: long enough that a barrier-released burst coalesces,
#: short enough that tail latency stays bounded (see the README's tuning
#: notes on ``max_wait_ms``).
MAX_WAIT_MS = 100.0
MAX_BATCH_SIZE = 12

#: Best-of repeats (thread scheduling can strand one client in its own
#: batching window; a single such straggler costs a full ``max_wait``).
REPEATS = 3


def _post_size(port, payload):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    try:
        connection.request("POST", "/v1/size", body=json.dumps(payload))
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def _fresh_engine(model, topology):
    engine = SizingEngine(model, cache_size=0)
    engine.adopt_topology(topology)
    return engine


def test_serve_throughput(topologies):
    topology = topologies["5T-OTA"]
    model, specs = _measured_oracle(topology, N_CLIENTS, np.random.default_rng(41))
    requests = [
        SizingRequest(topology=topology.name, spec=spec, id=f"client-{i}", max_iterations=1)
        for i, spec in enumerate(specs)
    ]

    # ------------------------------------------------------------------
    # Before: sequential single-request calls (no batching possible).
    sequential_engine = _fresh_engine(model, topology)
    sequential_engine.size(requests[0])  # warm (imports, first-touch)
    sequential_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for request in requests:
            sequential_engine.size(request)
        sequential_s = min(sequential_s, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # After: the same requests as concurrent HTTP clients.
    server = create_server(
        _fresh_engine(model, topology),
        max_batch_size=MAX_BATCH_SIZE,
        max_wait_ms=MAX_WAIT_MS,
        queue_depth=2 * N_CLIENTS,
    )
    port = server.server_address[1]
    thread = serve_forever_in_thread(server)
    try:
        # Warm the HTTP path too, on a throwaway request.
        status, _ = _post_size(port, requests[0].to_json())
        assert status == 200
        warm_batches = server.serve_stats.batches

        served_s = float("inf")
        for _ in range(REPEATS):
            barrier = threading.Barrier(len(requests))
            results = {}

            def client(request):
                barrier.wait(timeout=60.0)
                results[request.id] = _post_size(port, request.to_json())

            clients = [threading.Thread(target=client, args=(r,)) for r in requests]
            start = time.perf_counter()
            for worker in clients:
                worker.start()
            for worker in clients:
                worker.join(timeout=600.0)
            served_s = min(served_s, time.perf_counter() - start)
            assert len(results) == len(requests)
            assert all(status == 200 for status, _ in results.values())
    finally:
        server.shutdown_gracefully(timeout=30.0)
        thread.join(timeout=30.0)

    # Parity: every HTTP response bit-identical to a direct size_batch
    # run of the same requests on a fresh identical engine.
    direct = _fresh_engine(model, topology).size_batch(requests)
    for reference in direct:
        payload = dict(results[reference.request_id][1])
        expected = reference.to_json()
        payload.pop("wall_time_s")
        expected.pop("wall_time_s")
        assert payload == expected, f"served {reference.request_id} diverged from size_batch"
    served_responses = [SizingResponse.from_json(body) for _, body in results.values()]
    assert sum(r.success for r in served_responses) == sum(r.success for r in direct)

    # Coalescing: strictly fewer engine batches than served requests
    # (batches accumulate across all repeats).
    batches = server.serve_stats.batches - warm_batches
    total_served = REPEATS * len(requests)
    batches_per_request = batches / total_served
    assert batches_per_request < 1.0, f"no coalescing: {batches} batches / {total_served} requests"
    largest = max(server.serve_stats.batch_size_histogram)
    histogram = dict(sorted(server.serve_stats.batch_size_histogram.items()))
    assert largest >= 2, f"no multi-request batch formed: histogram {histogram}"

    latency = server.serve_stats.latency_ms()
    speedup = sequential_s / served_s
    lines = [
        "Serve throughput -- micro-batched HTTP vs sequential single requests",
        "",
        f"{len(requests)} concurrent single-request clients "
        f"(max_batch_size={MAX_BATCH_SIZE}, max_wait_ms={MAX_WAIT_MS:g})",
        f"sequential engine.size loop:   {sequential_s:8.3f} s "
        f"({len(requests) / sequential_s:6.1f} req/s)",
        f"concurrent HTTP through serve: {served_s:8.3f} s "
        f"({len(requests) / served_s:6.1f} req/s)",
        f"speedup: {speedup:.1f}x",
        f"engine batches: {batches} for {total_served} served requests "
        f"({batches_per_request:.2f} batches/request, largest batch {largest})",
        f"queue+solve latency: p50 {latency['p50']:.0f} ms, "
        f"p95 {latency['p95']:.0f} ms, p99 {latency['p99']:.0f} ms",
        "responses: bit-identical to direct size_batch",
    ]
    write_result("serve_throughput", lines)
    write_bench_json(
        "serve",
        {
            "clients": len(requests),
            "repeats": REPEATS,
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_ms": MAX_WAIT_MS,
            "sequential_s": round(sequential_s, 4),
            "served_s": round(served_s, 4),
            "speedup": round(speedup, 2),
            "batches": batches,
            "batches_per_request": round(batches_per_request, 4),
            "largest_batch": largest,
            "latency_ms": {
                key: None if value is None else round(value, 2)
                for key, value in latency.items()
            },
        },
    )

    # Typical measured speedup is 1.4-1.6x; the floor is deliberately
    # loose because at this workload size (~8 ms of solver work per
    # request) fixed HTTP/thread overhead eats into the batching win,
    # and CI machine load moves the margin.  The committed
    # BENCH_serve.json carries the real number; this assert only guards
    # against serving becoming *slower* than the sequential loop.
    assert speedup >= 1.05, (
        f"serving slower than sequential: {speedup:.2f}x "
        f"(sequential {sequential_s:.3f}s, served {served_s:.3f}s)"
    )
