"""Table III: target vs optimized performance for the 5T-OTA.

Runs the full Fig. 3 sizing flow on three unseen validation specifications
and reports target vs achieved metrics -- our version of the paper's
Table III.  The specs go through ``SizingEngine.size_batch`` so Stage I/II
inference is batched; the benchmarked operation is one full sizing call.
"""

from repro.service import SizingRequest

from conftest import write_result
from _tables import optimization_lines


def test_table3_target_vs_optimized_5t(benchmark, artifact, engine):
    records = artifact.val_records["5T-OTA"]
    lines, responses = optimization_lines(
        "Table III -- 5T-OTA target vs optimized", engine, "5T-OTA", records, n_designs=3
    )
    successes = sum(r.success for r in responses)
    lines.append("")
    lines.append(f"{successes}/3 specifications met")
    write_result("table3_opt_5t", lines)

    assert successes >= 1

    record = records[3]
    request = SizingRequest.for_spec("5T-OTA", record.gain_db, record.f3db_hz, record.ugf_hz)
    benchmark.pedantic(lambda: engine.size(request), rounds=1, iterations=1)
