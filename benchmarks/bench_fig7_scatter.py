"""Fig. 7: predicted vs simulation-based gm and gds for the 5T-OTA.

Prints the scatter series (desired, predicted) per device for gm and gds
and their correlation coefficients; the paper's figure shows the points
hugging the 45-degree line.  The benchmarked operation is one transformer
inference (spec -> device parameters).
"""

import numpy as np

from repro.core import DesignSpec

from conftest import write_result


def test_fig7_gm_gds_scatter(benchmark, artifact, predictions):
    prediction_set = predictions.get("5T-OTA")
    lines = ["Fig. 7 -- 5T-OTA predicted vs desired gm, gds", ""]
    for param, unit, scale in (("gm", "mS", 1e3), ("gds", "uS", 1e6)):
        lines.append(f"{param} scatter (desired, predicted) in {unit}:")
        for group in ("M1", "M3", "M5"):
            desired, predicted = prediction_set.arrays(group, param)
            corr = float(np.corrcoef(desired, predicted)[0, 1]) if len(desired) > 1 else float("nan")
            pairs = "  ".join(
                f"({d * scale:.2f},{p * scale:.2f})" for d, p in list(zip(desired, predicted, strict=True))[:8]
            )
            lines.append(f"  {group}: r={corr:.3f}  first points: {pairs}")
        lines.append("")
    failures = prediction_set.parse_failures
    lines.append(f"designs evaluated: {prediction_set.total}, unparseable decodes: {failures}")
    write_result("fig7_scatter", lines)

    # The dominant parameters must correlate strongly along the 45-deg line.
    desired, predicted = prediction_set.arrays("M3", "gm")
    assert len(desired) >= 10
    assert float(np.corrcoef(desired, predicted)[0, 1]) > 0.6

    record = artifact.val_records["5T-OTA"][0]
    spec = DesignSpec(record.gain_db, record.f3db_hz, record.ugf_hz)
    benchmark(lambda: artifact.model.predict_params("5T-OTA", spec))
