"""Sec. III-C: restricted-BPE compression of DP-SFG sequences.

The paper reports a 3.77x sequence-length compression of BPE over
character-level tokenization (CLT).  This bench measures the ratio on our
corpus of encoder/decoder sequences across all three topologies.
"""


from conftest import write_result


def test_bpe_compression_ratio(benchmark, artifact):
    corpus_lines = []
    for name, records in artifact.train_records.items():
        builder = artifact.model.builder(name)
        for record in records[:80]:
            corpus_lines.append(builder.encoder_text(record.gain_db, record.f3db_hz, record.ugf_hz))
            corpus_lines.append(builder.decoder_text(record.device_params))

    bpe = artifact.model.bpe
    ratio = bpe.compression_ratio(corpus_lines)

    sample = corpus_lines[1]
    lines = [
        "Sec. III-C -- CLT vs restricted BPE",
        "",
        f"corpus lines: {len(corpus_lines)}  learned merges: {len(bpe.merges)}",
        f"compression ratio (CLT tokens / BPE tokens): {ratio:.2f}x   (paper: 3.77x)",
        "",
        "sample decoder line:",
        "  " + sample[:120],
        "tokenized:",
        "  " + " | ".join(bpe.encode(sample)[:24]),
    ]
    write_result("bpe_compression", lines)

    assert ratio > 2.0  # the paper's qualitative claim: BPE >> CLT

    benchmark(lambda: bpe.encode(sample))
