"""Fig. 5 / Sec. III-D: LUT characterization and spline accuracy.

Regenerates the characterization sweep (0-1.2 V, 60 mV grid, Wref=700 nm)
and quantifies the cubic-spline interpolation error at off-grid points --
the property that lets the paper keep the LUT coarse.  The benchmarked
operation is one interpolated 5-output LUT query.
"""

import numpy as np

from repro.devices import EKVModel, NMOS_65NM, PMOS_65NM
from repro.lut import build_lut

from conftest import write_result


def test_fig5_lut_characterization(benchmark):
    lines = ["Fig. 5 -- LUT characterization and interpolation accuracy", ""]
    rng = np.random.default_rng(0)
    luts = {}
    for tech in (NMOS_65NM, PMOS_65NM):
        lut = build_lut(tech)
        luts[tech.name] = lut
        model = EKVModel(tech)
        errors = {name: [] for name in ("id", "gm", "gds", "cds", "cgs")}
        for _ in range(200):
            vgs = float(rng.uniform(0.15, 1.15))
            vds = float(rng.uniform(0.1, 1.15))
            direct = model.evaluate_all(vgs, vds, lut.reference_width, lut.length)
            for name in errors:
                reference = float(direct[name]) / lut.reference_width
                interpolated = float(lut.query(name, vgs, vds))
                scale = max(abs(reference), 1e-12)
                errors[name].append(abs(interpolated - reference) / scale)
        lines.append(
            f"{tech.name}: grid {len(lut.vgs_grid)}x{len(lut.vds_grid)}, "
            f"Wref={lut.reference_width * 1e9:.0f}nm"
        )
        for name, errs in errors.items():
            lines.append(
                f"  {name:4s}: median rel err {np.median(errs):.2e}, "
                f"p95 {np.percentile(errs, 95):.2e}"
            )
        assert np.median(errors["gm"]) < 0.01
    write_result("fig5_lut", lines)

    lut = luts[NMOS_65NM.name]
    benchmark(lambda: lut.query_all(0.537, 0.621))
