"""Shared table-formatting helpers for the benchmark suite."""

from __future__ import annotations

import numpy as np

from repro.core import DesignSpec, correlation_table
from repro.service import SizingEngine, SizingRequest

#: Paper correlation tables (Tables II, IV, VI) for side-by-side printing.
PAPER_CORRELATIONS = {
    "5T-OTA": {
        "M1": {"gm": 0.982, "gds": 0.993, "cds": 0.962, "cgs": 0.964},
        "M3": {"gm": 0.999, "gds": 0.991, "cds": 0.997, "cgs": 0.998},
        "M5": {"gm": 0.999, "gds": 0.997, "cds": 0.997, "cgs": 0.997},
    },
    "CM-OTA": {
        "M1": {"gm": 0.811, "gds": 0.838, "cds": 0.871, "cgs": 0.875},
        "M3": {"gm": 0.798, "gds": 0.683, "cds": 0.878, "cgs": 0.883},
        "M5": {"gm": 0.817, "gds": 0.867, "cds": 0.601, "cgs": 0.760},
        "M6": {"gm": 0.893, "gds": 0.803, "cds": 0.881, "cgs": 0.895},
        "M8": {"gm": 0.912, "gds": 0.914, "cds": 0.891, "cgs": 0.892},
    },
    "2S-OTA": {
        "M1": {"gm": 0.942, "gds": 0.936, "cds": 0.876, "cgs": 0.879},
        "M3": {"gm": 0.988, "gds": 0.945, "cds": 0.913, "cgs": 0.915},
        "M5": {"gm": 0.928, "gds": 0.989, "cds": 0.918, "cgs": 0.922},
        "M6": {"gm": 0.856, "gds": 0.881, "cds": 0.843, "cgs": 0.798},
        "M7": {"gm": 0.892, "gds": 0.887, "cds": 0.785, "cgs": 0.880},
    },
}


def correlation_lines(title: str, topology, prediction_set) -> tuple[list[str], dict]:
    """Format a Tables II/IV/VI style correlation table."""
    table = correlation_table(prediction_set)
    paper = PAPER_CORRELATIONS[topology.name]
    lines = [title, "", f"{'group':6s} {'role':24s} {'gm':>7s} {'gds':>7s} {'Cds':>7s} {'Cgs':>7s}"]
    for group in topology.groups:
        row = table[group.name]
        lines.append(
            f"{group.name:6s} {group.role:24s} "
            f"{row['gm']:7.3f} {row['gds']:7.3f} {row['cds']:7.3f} {row['cgs']:7.3f}"
        )
        ref = paper[group.name]
        lines.append(
            f"{'':6s} {'(paper)':24s} "
            f"{ref['gm']:7.3f} {ref['gds']:7.3f} {ref['cds']:7.3f} {ref['cgs']:7.3f}"
        )
    lines.append("")
    lines.append(
        f"designs: {prediction_set.total}, unparseable decodes: {prediction_set.parse_failures}"
    )
    return lines, table


def optimization_lines(
    title: str, engine: SizingEngine, topology_name: str, records, n_designs: int = 3
):
    """Format a Tables III/V/VII style target-vs-optimized table.

    The specs are sized in one ``engine.size_batch`` call, so Stage I/II
    inference is batched across the table's designs.
    """
    lines = [
        title,
        "",
        f"{'gain tgt':>9s} {'gain opt':>9s} {'UGF tgt [MHz]':>14s} {'UGF opt':>9s} "
        f"{'BW tgt [MHz]':>13s} {'BW opt':>9s} {'ok':>4s} {'sims':>5s}",
    ]
    requests = [
        SizingRequest(
            topology=topology_name,
            spec=DesignSpec(record.gain_db, record.f3db_hz, record.ugf_hz),
        )
        for record in records[:n_designs]
    ]
    responses = engine.size_batch(requests)
    for request, response in zip(requests, responses, strict=True):
        spec = request.spec
        m = response.metrics
        lines.append(
            f"{spec.gain_db:9.2f} {m.gain_db if m else float('nan'):9.2f} "
            f"{spec.ugf_hz / 1e6:14.2f} {(m.ugf_hz if m else float('nan')) / 1e6:9.2f} "
            f"{spec.f3db_hz / 1e6:13.3f} {(m.f3db_hz if m else float('nan')) / 1e6:9.3f} "
            f"{str(response.success):>4s} {response.spice_simulations:>5d}"
        )
    return lines, responses


def mean_abs_corr(table: dict) -> float:
    values = [v for row in table.values() for v in row.values() if np.isfinite(v)]
    return float(np.mean(values)) if values else float("nan")
