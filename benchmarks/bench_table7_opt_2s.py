"""Table VII: target vs optimized performance for the 2S-OTA.

Runs the full Fig. 3 sizing flow on three unseen validation specifications
and reports target vs achieved metrics -- our version of the paper's
Table VII.  The specs go through ``SizingEngine.size_batch`` so Stage I/II
inference is batched; the benchmarked operation is one full sizing call.
"""

from repro.service import SizingRequest

from conftest import write_result
from _tables import optimization_lines


def test_table7_target_vs_optimized_2s(benchmark, artifact, engine):
    records = artifact.val_records["2S-OTA"]
    lines, responses = optimization_lines(
        "Table VII -- 2S-OTA target vs optimized", engine, "2S-OTA", records, n_designs=3
    )
    successes = sum(r.success for r in responses)
    lines.append("")
    lines.append(f"{successes}/3 specifications met")
    lines.append("(2S-OTA prediction quality is the CPU-scale gap; see EXPERIMENTS.md)")
    write_result("table7_opt_2s", lines)

    # Structural assertions only (see bench_table6 note): the flow must run
    # its full copilot budget and account for every iteration.
    for response in responses:
        assert response.spice_simulations <= 6
        assert response.iterations == len(response.decoded_texts)

    record = records[3]
    request = SizingRequest.for_spec("2S-OTA", record.gain_db, record.f3db_hz, record.ugf_hz)
    benchmark.pedantic(lambda: engine.size(request), rounds=1, iterations=1)
