"""Table VII: target vs optimized performance for the 2S-OTA.

Runs the full Fig. 3 sizing flow on three unseen validation specifications
and reports target vs achieved metrics -- our version of the paper's
Table VII.  The benchmarked operation is one full sizing call.
"""

from repro.core import DesignSpec, SizingFlow

from conftest import write_result
from _tables import optimization_lines


def test_table7_target_vs_optimized_2s(benchmark, artifact, topologies):
    topology = topologies["2S-OTA"]
    flow = SizingFlow(topology, artifact.model)
    records = artifact.val_records["2S-OTA"]
    lines, results = optimization_lines(
        "Table VII -- 2S-OTA target vs optimized", flow, records, n_designs=3
    )
    successes = sum(r.success for r in results)
    lines.append("")
    lines.append(f"{successes}/3 specifications met")
    lines.append("(2S-OTA prediction quality is the CPU-scale gap; see EXPERIMENTS.md)")
    write_result("table7_opt_2s", lines)

    # Structural assertions only (see bench_table6 note): the flow must run
    # its full copilot budget and account for every simulation.
    for result in results:
        assert result.spice_simulations <= 6
        assert result.iterations == len(result.trace)

    record = records[3]
    spec = DesignSpec(record.gain_db, record.f3db_hz, record.ugf_hz)
    benchmark.pedantic(lambda: flow.size(spec), rounds=1, iterations=1)
