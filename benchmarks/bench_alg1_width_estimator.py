"""Algorithm 1: width-estimation accuracy and convergence ablation.

Round-trips widths through the estimator across the sweep box and compares
the paper's literal Vds update rule (line 14, alpha=1e-4) against the
jump-to-minimum variant -- both must converge to the same widths.  The
benchmarked operation is one full Algorithm 1 run.
"""

import numpy as np

from repro.devices import EKVModel, NMOS_65NM
from repro.lut import DeviceParams, build_lut, estimate_width

from conftest import write_result


def _params(model, vgs, vds, width):
    values = model.evaluate_all(vgs, vds, width, 180e-9)
    return DeviceParams(
        gm=float(values["gm"]),
        gds=float(values["gds"]),
        cds=float(values["cds"]),
        cgs=float(values["cgs"]),
        id=float(values["id"]),
    )


def test_alg1_width_estimator(benchmark):
    lut = build_lut(NMOS_65NM)
    model = EKVModel(NMOS_65NM)
    rng = np.random.default_rng(1)

    jump_errors, paper_errors, disagreements, iteration_counts = [], [], [], []
    for _ in range(40):
        width = float(rng.uniform(0.7e-6, 50e-6))
        vgs = float(rng.uniform(0.35, 0.85))
        vds = float(rng.uniform(0.2, 1.0))
        params = _params(model, vgs, vds, width)
        jump = estimate_width(params, lut, update="jump")
        paper = estimate_width(params, lut, update="paper", max_iterations=300)
        jump_errors.append(abs(jump.width - width) / width)
        paper_errors.append(abs(paper.width - width) / width)
        disagreements.append(abs(jump.width - paper.width) / width)
        iteration_counts.append(jump.iterations)

    lines = [
        "Algorithm 1 -- width estimator round-trip and update-rule ablation",
        "",
        f"round-trip rel. error (jump):  median {np.median(jump_errors):.2e}, "
        f"max {np.max(jump_errors):.2e}",
        f"round-trip rel. error (paper): median {np.median(paper_errors):.2e}, "
        f"max {np.max(paper_errors):.2e}",
        f"jump vs paper disagreement:    median {np.median(disagreements):.2e}, "
        f"max {np.max(disagreements):.2e}",
        f"jump iterations: mean {np.mean(iteration_counts):.1f}",
    ]
    write_result("alg1_width_estimator", lines)

    assert np.median(jump_errors) < 0.01
    # The paper's alpha=1e-4 step converges very slowly when the optimal
    # Vds is far from the Vdd/2 starting point, so allow a few percent of
    # residual disagreement at a 300-iteration cap.
    assert np.max(disagreements) < 0.08

    params = _params(model, 0.5, 0.6, 10e-6)
    benchmark(lambda: estimate_width(params, lut))
