"""Table VI: correlation coefficients for the 2S-OTA.

Pearson correlation between transformer-predicted device parameters and
the simulation-based validation values, per matched device group -- our
version of the paper's Table VI.  The benchmarked operation is the
correlation computation over the cached prediction set.
"""

import numpy as np

from conftest import write_result
from _tables import correlation_lines


def test_table6_correlations_2s(benchmark, topologies, predictions):
    topology = topologies["2S-OTA"]
    prediction_set = predictions.get("2S-OTA")
    lines, table = correlation_lines(
        "Table VI -- 2S-OTA correlation coefficients (ours vs paper)",
        topology,
        prediction_set,
    )
    write_result("table6_corr_2s", lines)

    # At CPU scale the 2S-OTA prediction collapses (five width degrees of
    # freedom against three specs is weakly identifiable with ~500 training
    # designs; the paper resolves it with 8k designs and a 720-d model), so
    # the assertions here are structural: the table is produced and a
    # usable fraction of decodes parses.  EXPERIMENTS.md discusses this
    # honestly as the main scale-induced gap.
    assert prediction_set.total - prediction_set.parse_failures >= 10
    assert all(len(row) == 4 for row in table.values())

    desired, predicted = prediction_set.arrays("M3", "gm")
    benchmark(lambda: np.corrcoef(desired, predicted)[0, 1])
